// Cross-implementation integration tests: all four GEMMs must agree with
// each other (exactly, on integer data) across a matrix-size sweep, and the
// workload/measurement machinery must compose.
#include <gtest/gtest.h>

#include "baselines/bailey.hpp"
#include "baselines/conventional.hpp"
#include "baselines/dgefmm.hpp"
#include "baselines/dgemmw.hpp"
#include "baselines/frens_wise.hpp"
#include "blas/gemm.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "core/modgemm.hpp"
#include "core/morton_matrix.hpp"

namespace strassen {
namespace {

class CrossImpl : public ::testing::TestWithParam<int> {};

TEST_P(CrossImpl, AllFourImplementationsAgreeExactly) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n));
  Matrix<double> A(n, n), B(n, n);
  rng.fill_int(A.storage(), -2, 2);
  rng.fill_int(B.storage(), -2, 2);

  Matrix<double> Cconv(n, n), Cmod(n, n), Cfmm(n, n), Cw(n, n);
  baselines::conventional_gemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0,
                               A.data(), n, B.data(), n, 0.0, Cconv.data(), n);
  core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n, B.data(),
                n, 0.0, Cmod.data(), n);
  baselines::dgefmm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
                    B.data(), n, 0.0, Cfmm.data(), n);
  baselines::dgemmw(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
                    B.data(), n, 0.0, Cw.data(), n);

  EXPECT_EQ(max_abs_diff<double>(Cconv.view(), Cmod.view()), 0.0);
  EXPECT_EQ(max_abs_diff<double>(Cconv.view(), Cfmm.view()), 0.0);
  EXPECT_EQ(max_abs_diff<double>(Cconv.view(), Cw.view()), 0.0);
}

INSTANTIATE_TEST_SUITE_P(SizeSweep, CrossImpl,
                         ::testing::Values(50, 96, 150, 151, 200, 255, 256,
                                           257, 320, 400, 500, 513));

// Exhaustive small-size sweep: every n in [1, 96] crosses the direct
// thresholds, peeling parities, overlap roundings and padding boundaries of
// the different implementations in different places; all seven
// implementations must agree exactly at every single size.
class SmallExhaustive : public ::testing::TestWithParam<int> {};

TEST_P(SmallExhaustive, AllImplementationsAgree) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 13 + 5);
  Matrix<double> A(n, n), B(n, n), Ref(n, n);
  rng.fill_int(A.storage(), -2, 2);
  rng.fill_int(B.storage(), -2, 2);
  blas::naive_gemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
                   B.data(), n, 0.0, Ref.data(), n);
  Matrix<double> C(n, n);
  auto check = [&](const char* name, auto&& call) {
    for (auto& x : C.storage()) x = -99.0;
    call();
    ASSERT_EQ(max_abs_diff<double>(C.view(), Ref.view()), 0.0)
        << name << " at n=" << n;
  };
  check("modgemm", [&] {
    core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
                  B.data(), n, 0.0, C.data(), n);
  });
  check("dgefmm", [&] {
    baselines::dgefmm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
                      B.data(), n, 0.0, C.data(), n);
  });
  check("dgemmw", [&] {
    baselines::dgemmw(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
                      B.data(), n, 0.0, C.data(), n);
  });
  check("bailey", [&] {
    baselines::bailey_gemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(),
                           n, B.data(), n, 0.0, C.data(), n);
  });
  check("frens_wise", [&] {
    baselines::frens_wise_gemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0,
                               A.data(), n, B.data(), n, 0.0, C.data(), n);
  });
  check("conventional", [&] {
    baselines::conventional_gemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0,
                                 A.data(), n, B.data(), n, 0.0, C.data(), n);
  });
}

INSTANTIATE_TEST_SUITE_P(OneToNinetySix, SmallExhaustive,
                         ::testing::Range(1, 97));

TEST(Integration, MortonNativeAgreesWithInterfaceLevel) {
  const int n = 280;
  Rng rng(99);
  Matrix<double> A(n, n), B(n, n), C1(n, n), C2(n, n);
  rng.fill_int(A.storage());
  rng.fill_int(B.storage());
  core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n, B.data(),
                n, 0.0, C1.data(), n);
  const core::MortonProductPlan p = core::plan_morton_product(n, n, n);
  core::MortonMatrix Am = core::MortonMatrix::from_colmajor(p.a, A.view());
  core::MortonMatrix Bm = core::MortonMatrix::from_colmajor(p.b, B.view());
  core::MortonMatrix Cm(p.c);
  core::multiply(Am, Bm, Cm);
  Cm.to_colmajor(C2.view());
  EXPECT_EQ(max_abs_diff<double>(C1.view(), C2.view()), 0.0);
}

TEST(Integration, DgemmInterfaceParityAcrossImplementations) {
  // One awkward call shape -- transposed, scaled, strided, odd -- through
  // every implementation, all against the naive oracle.
  const int m = 143, n = 157, k = 131;
  Rng rng(123);
  Matrix<double> A(k, m, k + 3);  // stores op(A) = A^T
  Matrix<double> B(k, n, k + 5);
  Matrix<double> Ref(m, n, m + 7), C(m, n, m + 7);
  rng.fill_int(A.storage(), -2, 2);
  rng.fill_int(B.storage(), -2, 2);
  rng.fill_int(Ref.storage(), -2, 2);

  auto reset = [&](Matrix<double>& X) {
    copy_matrix<double>(Ref.view(), X.view());
  };
  Matrix<double> Oracle(m, n, m + 7);
  reset(Oracle);
  blas::naive_gemm(Op::Trans, Op::NoTrans, m, n, k, 2.0, A.data(), A.ld(),
                   B.data(), B.ld(), -1.0, Oracle.data(), Oracle.ld());

  reset(C);
  core::modgemm(Op::Trans, Op::NoTrans, m, n, k, 2.0, A.data(), A.ld(),
                B.data(), B.ld(), -1.0, C.data(), C.ld());
  EXPECT_EQ(max_abs_diff<double>(C.view(), Oracle.view()), 0.0) << "modgemm";

  reset(C);
  baselines::dgefmm(Op::Trans, Op::NoTrans, m, n, k, 2.0, A.data(), A.ld(),
                    B.data(), B.ld(), -1.0, C.data(), C.ld());
  EXPECT_EQ(max_abs_diff<double>(C.view(), Oracle.view()), 0.0) << "dgefmm";

  reset(C);
  baselines::dgemmw(Op::Trans, Op::NoTrans, m, n, k, 2.0, A.data(), A.ld(),
                    B.data(), B.ld(), -1.0, C.data(), C.ld());
  EXPECT_EQ(max_abs_diff<double>(C.view(), Oracle.view()), 0.0) << "dgemmw";

  reset(C);
  baselines::conventional_gemm(Op::Trans, Op::NoTrans, m, n, k, 2.0, A.data(),
                               A.ld(), B.data(), B.ld(), -1.0, C.data(),
                               C.ld());
  EXPECT_EQ(max_abs_diff<double>(C.view(), Oracle.view()), 0.0) << "dgemm";
}

TEST(Integration, RepeatedCallsAreIndependent) {
  // No hidden state: calling modgemm twice with the same inputs gives the
  // same answer, and interleaving different shapes does not corrupt either.
  const int n1 = 150, n2 = 257;
  Rng rng(7);
  Matrix<double> A1(n1, n1), B1(n1, n1), A2(n2, n2), B2(n2, n2);
  rng.fill_int(A1.storage());
  rng.fill_int(B1.storage());
  rng.fill_int(A2.storage());
  rng.fill_int(B2.storage());
  Matrix<double> Ca(n1, n1), Cb(n2, n2), Cc(n1, n1);
  core::modgemm(Op::NoTrans, Op::NoTrans, n1, n1, n1, 1.0, A1.data(), n1,
                B1.data(), n1, 0.0, Ca.data(), n1);
  core::modgemm(Op::NoTrans, Op::NoTrans, n2, n2, n2, 1.0, A2.data(), n2,
                B2.data(), n2, 0.0, Cb.data(), n2);
  core::modgemm(Op::NoTrans, Op::NoTrans, n1, n1, n1, 1.0, A1.data(), n1,
                B1.data(), n1, 0.0, Cc.data(), n1);
  EXPECT_EQ(max_abs_diff<double>(Ca.view(), Cc.view()), 0.0);
}

}  // namespace
}  // namespace strassen
