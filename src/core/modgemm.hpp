// modgemm.hpp -- MODGEMM: the paper's memory-friendly Strassen-Winograd GEMM.
//
// Public semantics are exactly Level 3 BLAS dgemm (paper S2.1):
//
//     C <- alpha * op(A) . op(B) + beta * C
//
// with column-major A, B, C and leading dimensions; op(X) is X or X^T.
//
// Pipeline for one product (paper S3.5):
//   1. plan     -- choose the per-dimension truncation tiles and the common
//                  recursion depth that minimize padding (layout/plan).
//   2. convert  -- copy op(A), op(B) into zero-padded Morton buffers; the
//                  transposition is folded into this gather.
//   3. recurse  -- Strassen-Winograd over the Morton blocks (core/winograd),
//                  producing D = op(A).op(B) in Morton order.
//   4. convert  -- write C <- alpha*D + beta*C while converting back to
//                  column-major (the alpha/beta work is fused here, so the
//                  common alpha=1, beta=0 case costs nothing extra).
//
// Highly rectangular inputs that admit no common recursion depth are first
// decomposed by layout/split and reconstructed as sums of sub-products
// (paper Fig. 4); thin problems (min dimension <= direct_threshold) skip
// Strassen and run the conventional blocked algorithm.
#pragma once

#include <algorithm>
#include <cstdint>
#include <new>
#include <optional>
#include <type_traits>

#include "blas/gemm.hpp"
#include "blas/kernels/registry.hpp"
#include "common/arena.hpp"
#include "common/check.hpp"
#include "common/matrix.hpp"
#include "common/memmodel.hpp"
#include "common/status.hpp"
#include "common/timer.hpp"
#include "core/family.hpp"
#include "core/packfused.hpp"
#include "core/winograd.hpp"
#include "core/workspace.hpp"
#include "layout/convert.hpp"
#include "layout/plan.hpp"
#include "layout/split.hpp"
#include "obs/report.hpp"

namespace strassen::core {

// The per-call report and fallback ladder live in obs/ (shared with the
// parallel driver and the env sink); core keeps its historical names as
// aliases so existing embedders compile unchanged.
using FallbackReason = obs::FallbackReason;
using ModgemmReport = obs::GemmReport;
using obs::fallback_reason_name;

// Tuning knobs for the MODGEMM driver.
struct ModgemmOptions {
  layout::TileOptions tiles{};
  // Ablation switch: force a fixed truncation tile (static padding, the
  // paper's strawman).  0 = dynamic selection (the paper's contribution).
  int fixed_tile = 0;
  // Workspace budget in bytes for the Morton buffers plus the recursion
  // arena of each planned product (0 = unlimited).  When the planned depth
  // needs more than this, the driver degrades gracefully: it re-plans at a
  // shallower recursion depth (less temporary space, per Boyer et al.'s
  // depth/space trade-off) and, when no Strassen depth fits, falls back to
  // the workspace-free conventional gemm_blocked path.  The chosen
  // degradation is recorded in ModgemmReport::fallback_reason.
  std::size_t max_workspace_bytes = 0;
  // Leaf-kernel pin for this call.  kAuto (the default) leaves the engine's
  // active kernel alone (environment / CPU probe / autotuner selection); any
  // other value is installed for the duration of the call and restored on
  // return.  The active kernel is process-global (kernels/registry.hpp), so
  // concurrent calls pinning different kernels race -- pin at startup or via
  // STRASSEN_KERNEL for multi-threaded embedders.  Only the production
  // (RawMem, double) instantiation consults the engine; traced executions
  // always run the scalar path.
  blas::kernels::Kind kernel = blas::kernels::Kind::kAuto;
  blas::kernels::Avx2Variant avx2_variant = blas::kernels::Avx2Variant::kAuto;
  // Schedule-family pin for this call (analysis/schedule.hpp).  kAuto (the
  // default) defers to the STRASSEN_SCHEDULE environment override and then
  // to the planner, which runs the seed-exact 3-temporary family and swaps
  // to the low-memory families only when max_workspace_bytes forces it
  // (recorded as FallbackReason::kScheduleSwap).  Pinning kLowMem/kInPlace
  // runs that family unconditionally; pinning kWinograd disables the
  // schedule-swap rung (the ladder then degrades by depth as before).
  analysis::ScheduleFamily schedule = analysis::ScheduleFamily::kAuto;
  // Execution-strategy pin for this call (layout/plan.hpp).  kAuto (the
  // default) defers to the STRASSEN_STRATEGY environment override and then
  // to the planner heuristic (layout::choose_exec_strategy): pack-fused for
  // one-shot / rectangular / shallow-recursion shapes, Morton for deep
  // square recursions.  Pinning kMorton or kPackFused runs that strategy for
  // every Strassen product of the call regardless of the environment.  Both
  // strategies are bit-identical for all alpha/beta; non-Strassen (direct)
  // products and traced/non-RawMem instantiations always execute kMorton.
  layout::ExecStrategy strategy = layout::ExecStrategy::kAuto;
  // <m,k,n> algorithm-family pin for this call (analysis/algo_family.hpp).
  // kAuto (the default) defers to the STRASSEN_ALGO environment override and
  // then to the planner heuristic (layout::choose_algo), which keeps every
  // square / deep problem on the seed-exact <2,2,2> path and switches to a
  // shape-matched table (<3,2,3>, <2,3,4>, <3,3,3>) only on a clear modeled
  // win.  Pinning k222 disables the families outright; pinning any other
  // value runs one level of that coefficient table unconditionally, with
  // every sub-product recursing through the plain <2,2,2> driver.  A pinned
  // family that cannot run (its ceil-partitioned sub-products would sit at
  // or below the direct threshold, its staging exceeds max_workspace_bytes,
  // or its up-front allocation fails) degrades to <2,2,2>, recorded as
  // FallbackReason::kAlgoFallback.  The fixed_tile ablation studies <2,2,2>
  // padding and never runs a family.
  analysis::AlgoFamily algo = analysis::AlgoFamily::kAuto;
  // Per-call observability: when non-null, the call fills *report with phase
  // timers, plan/padding data, workspace accounting, kernel telemetry and
  // (for pmodgemm) parallel stats -- see obs/report.hpp.  Null (the default)
  // keeps the whole subsystem off: no clocks, no counters, no allocations.
  // Equivalent to the trailing `report` parameter, which takes precedence
  // when both are set.
  obs::GemmReport* report = nullptr;
};

// dgemm-convention argument validation shared by every entry point (serial,
// parallel, nothrow, Fortran compat), so they all reject identically.
// Returns kOk or the Status naming the first bad argument.
inline Status validate_gemm_args(Op opa, Op opb, int m, int n, int k, int lda,
                                 int ldb, int ldc) noexcept {
  if (m < 0) return Status::kBadM;
  if (n < 0) return Status::kBadN;
  if (k < 0) return Status::kBadK;
  if (lda < std::max(1, opa == Op::NoTrans ? m : k)) return Status::kBadLda;
  if (ldb < std::max(1, opb == Op::NoTrans ? k : n)) return Status::kBadLdb;
  if (ldc < std::max(1, m)) return Status::kBadLdc;
  return Status::kOk;
}

// Throwing flavor: rejects with the offending values in the message.
inline void require_gemm_args(Op opa, Op opb, int m, int n, int k, int lda,
                              int ldb, int ldc) {
  STRASSEN_REQUIRE(m >= 0 && n >= 0 && k >= 0,
                   "negative dimension: m=" << m << " n=" << n << " k=" << k);
  STRASSEN_REQUIRE(lda >= std::max(1, opa == Op::NoTrans ? m : k),
                   "lda too small: lda=" << lda << " op(A)=" << op_char(opa)
                                         << " m=" << m << " k=" << k);
  STRASSEN_REQUIRE(ldb >= std::max(1, opb == Op::NoTrans ? k : n),
                   "ldb too small: ldb=" << ldb << " op(B)=" << op_char(opb)
                                         << " k=" << k << " n=" << n);
  STRASSEN_REQUIRE(ldc >= std::max(1, m),
                   "ldc too small: ldc=" << ldc << " m=" << m);
}

// Peak temporary bytes modgemm needs for one product under this plan: the
// three Morton buffers plus the Winograd recursion arena (sized for the
// plan's schedule family), including the per-allocation 64-byte rounding.
// Direct plans need none (gemm_blocked streams from the operands).
// Overflow-checked; public so embedders can size
// ModgemmOptions::max_workspace_bytes.
inline std::size_t modgemm_workspace_bytes(const layout::GemmPlan& plan,
                                           std::size_t elem_size) {
  if (plan.direct || !plan.feasible) return 0;
  return checked_add(modgemm_conversion_bytes(plan, elem_size),
                     winograd_workspace_bytes(plan.m.tile, plan.k.tile,
                                              plan.n.tile, plan.depth,
                                              elem_size, plan.schedule));
}

// Forward declaration (defined below): the family engine's sub-products
// recurse through the full driver with the algorithm pinned to <2,2,2>.
template <class MM, class T>
void modgemm_mm(MM& mm, Op opa, Op opb, int m, int n, int k, T alpha,
                const T* A, int lda, const T* B, int ldb, T beta, T* C,
                int ldc, const ModgemmOptions& opt = {},
                ModgemmReport* report = nullptr);

namespace detail {

// Parses a STRASSEN_SCHEDULE value ("auto", "winograd", "winograd-lowmem",
// "winograd-inplace"); throws via STRASSEN_REQUIRE naming the offending
// value on anything else.  Implemented in modgemm.cpp.
analysis::ScheduleFamily parse_schedule_family(const char* value);

// The STRASSEN_SCHEDULE environment override, re-read per call (value
// grammar follows the STRASSEN_KERNEL idiom).  Unset or "auto" -> kAuto;
// malformed values throw.
analysis::ScheduleFamily env_schedule_family();

// The schedule family this call runs: the per-call pin wins, then the
// environment override, then kAuto (planner's choice).
inline analysis::ScheduleFamily resolve_schedule_family(
    const ModgemmOptions& opt) {
  if (opt.schedule != analysis::ScheduleFamily::kAuto) return opt.schedule;
  return env_schedule_family();
}

// Parses a STRASSEN_STRATEGY value ("auto", "morton", "packfused"); throws
// via STRASSEN_REQUIRE naming the offending value on anything else.
// Implemented in modgemm.cpp.
layout::ExecStrategy parse_exec_strategy(const char* value);

// The STRASSEN_STRATEGY environment override, re-read per call (same
// grammar discipline as STRASSEN_SCHEDULE).  Unset or "auto" -> kAuto;
// malformed values throw.
layout::ExecStrategy env_exec_strategy();

// The strategy this call resolved from its pin and environment (the per-call
// pin wins, so tests pinning kMorton hold even under a forced
// STRASSEN_STRATEGY).  kAuto defers the final choice to the per-plan
// heuristic below.
inline layout::ExecStrategy resolve_exec_strategy(const ModgemmOptions& opt) {
  if (opt.strategy != layout::ExecStrategy::kAuto) return opt.strategy;
  return env_exec_strategy();
}

// Parses a STRASSEN_ALGO value ("auto", "222", "323", "234", "333"); throws
// via STRASSEN_REQUIRE naming the offending value on anything else.
// Implemented in modgemm.cpp.
analysis::AlgoFamily parse_algo_family(const char* value);

// The STRASSEN_ALGO environment override, re-read per call (same grammar
// discipline as STRASSEN_SCHEDULE).  Unset or "auto" -> kAuto; malformed
// values throw.
analysis::AlgoFamily env_algo_family();

// The <m,k,n> family this call resolved from its pin and environment (the
// per-call pin wins, so the family engine's own <2,2,2>-pinned sub-products
// hold even under a forced STRASSEN_ALGO).  kAuto defers the final choice to
// layout::choose_algo.
inline analysis::AlgoFamily resolve_algo_family(const ModgemmOptions& opt) {
  if (opt.algo != analysis::AlgoFamily::kAuto) return opt.algo;
  return env_algo_family();
}

// The strategy one PLANNED product executes: non-Strassen plans always run
// kMorton (there is nothing to fuse), an explicit pin/env choice sticks, and
// kAuto consults the planner heuristic.
inline layout::ExecStrategy plan_exec_strategy(layout::ExecStrategy resolved,
                                               const layout::GemmPlan& plan,
                                               int m, int k, int n,
                                               const layout::TileOptions& tiles) {
  if (plan.direct || !plan.feasible || plan.depth < 1)
    return layout::ExecStrategy::kMorton;
  if (resolved != layout::ExecStrategy::kAuto) return resolved;
  return layout::choose_exec_strategy(plan, m, k, n, tiles);
}

// Escalates the recorded fallback to the worse of the two (split calls run
// several products; the report keeps the most severe degradation).
inline void record_fallback(ModgemmReport* report, FallbackReason r) {
  if (report && static_cast<int>(r) > static_cast<int>(report->fallback_reason))
    report->fallback_reason = r;
}

// Degrades a feasible plan until its workspace fits opt.max_workspace_bytes.
// The ladder, from least to most severe:
//   1. schedule swap -- keep the planned depth but run a lower-footprint
//      schedule family (kLowMem saves ~1/3 of each level's temporaries,
//      kInPlace additionally drops the top level to a single C-shaped
//      buffer).  Recorded as kScheduleSwap.  Skipped when `resolved` pins a
//      family (the pinned family was already priced in).
//   2. depth reduction -- re-plan at shallower recursion depths (each level
//      removed drops that level's quadrant temporaries -- Boyer et al.'s
//      space/depth trade), trying the family candidates at each depth.
//      Recorded as kDepthReduced.
//   3. direct -- no Strassen depth fits; the workspace-free conventional
//      path.  Recorded as kBudgetDirect.
// `resolved` != kAuto pins plan.schedule to that family throughout.
inline layout::GemmPlan apply_workspace_budget(
    layout::GemmPlan plan, int m, int k, int n, const ModgemmOptions& opt,
    std::size_t elem_size, ModgemmReport* report,
    analysis::ScheduleFamily resolved = analysis::ScheduleFamily::kAuto) {
  using analysis::ScheduleFamily;
  if (resolved != ScheduleFamily::kAuto) plan.schedule = resolved;
  if (opt.max_workspace_bytes == 0 || plan.direct || !plan.feasible)
    return plan;
  if (modgemm_workspace_bytes(plan, elem_size) <= opt.max_workspace_bytes)
    return plan;
  // Family candidates in decreasing footprint order.  Pinned calls get only
  // the pinned family (already checked above at full depth -> only the depth
  // loop below can save them).
  const ScheduleFamily ladder[] = {ScheduleFamily::kWinograd,
                                   ScheduleFamily::kLowMem,
                                   ScheduleFamily::kInPlace};
  const ScheduleFamily pinned[] = {plan.schedule};
  const ScheduleFamily* fams = resolved == ScheduleFamily::kAuto ? ladder
                                                                 : pinned;
  const int nfams = resolved == ScheduleFamily::kAuto ? 3 : 1;
  // Rung 1: full planned depth, lower-footprint family.
  for (int f = 0; f < nfams; ++f) {
    if (fams[f] == plan.schedule) continue;  // priced already
    layout::GemmPlan cand = plan;
    cand.schedule = fams[f];
    if (modgemm_workspace_bytes(cand, elem_size) <= opt.max_workspace_bytes) {
      record_fallback(report, FallbackReason::kScheduleSwap);
      return cand;
    }
  }
  // Rung 2: shallower depths, cheapest-first over the family candidates so
  // each depth is exhausted before giving up another recursion level.
  for (int d = plan.depth - 1; d >= 1; --d) {
    const layout::DimPlan dm = layout::choose_dim_at_depth(m, d, opt.tiles);
    const layout::DimPlan dk = layout::choose_dim_at_depth(k, d, opt.tiles);
    const layout::DimPlan dn = layout::choose_dim_at_depth(n, d, opt.tiles);
    if (dm.tile == 0 || dk.tile == 0 || dn.tile == 0) continue;
    for (int f = 0; f < nfams; ++f) {
      layout::GemmPlan cand;
      cand.depth = d;
      cand.m = dm;
      cand.k = dk;
      cand.n = dn;
      cand.feasible = true;
      cand.schedule = fams[f];
      if (modgemm_workspace_bytes(cand, elem_size) <=
          opt.max_workspace_bytes) {
        record_fallback(report, FallbackReason::kDepthReduced);
        return cand;
      }
    }
  }
  layout::GemmPlan direct;
  direct.direct = true;
  direct.m = layout::DimPlan{m, m, 0, m};
  direct.k = layout::DimPlan{k, k, 0, k};
  direct.n = layout::DimPlan{n, n, 0, n};
  record_fallback(report, FallbackReason::kBudgetDirect);
  return direct;
}

// The planned Strassen-Winograd path for one product, over a CALLER-OWNED
// arena sized to at least modgemm_workspace_bytes(plan, sizeof(T)).  All
// arena pushes (the Morton buffers and the recursion temporaries) happen
// before any arithmetic, and C is written only by the final from_morton
// conversion, which does not allocate -- so a std::bad_alloc from this
// function guarantees C was never touched, and the caller may retry on a
// cheaper path.  Workspace accounting (requested bytes / allocation count)
// is the caller's business: the serial wrapper below books its own arena,
// while the batched driver (core/batched.cpp) acquires through the
// per-thread ScratchArena cache, whose collector note already covers the
// acquisition.
template <class MM, class T>
void modgemm_strassen_arena(MM& mm, Op opa, Op opb, int m, int n, int k,
                            T alpha, const T* A, int lda, const T* B, int ldb,
                            T beta, T* C, int ldc,
                            const layout::GemmPlan& plan, Arena& arena,
                            ModgemmReport* report) {
  STRASSEN_ASSERT(plan.feasible && plan.depth >= 1);
  const layout::MortonLayout la{m, k, plan.m.tile, plan.k.tile, plan.depth};
  const layout::MortonLayout lb{k, n, plan.k.tile, plan.n.tile, plan.depth};
  const layout::MortonLayout lc{m, n, plan.m.tile, plan.n.tile, plan.depth};

  T* Am = arena.push<T>(static_cast<std::size_t>(la.elems()));
  T* Bm = arena.push<T>(static_cast<std::size_t>(lb.elems()));
  T* Cm = arena.push<T>(static_cast<std::size_t>(lc.elems()));
  // Alignment contract the SIMD leaf kernels build on: every Morton buffer
  // starts on a cache-line boundary (Arena::kChunkAlignment).
  STRASSEN_ASSERT(arena.alignment() >= Arena::kChunkAlignment);
  STRASSEN_ASSERT(reinterpret_cast<std::uintptr_t>(Am) %
                      Arena::kChunkAlignment == 0);
  STRASSEN_ASSERT(reinterpret_cast<std::uintptr_t>(Bm) %
                      Arena::kChunkAlignment == 0);
  STRASSEN_ASSERT(reinterpret_cast<std::uintptr_t>(Cm) %
                      Arena::kChunkAlignment == 0);

  WallTimer t;
  layout::to_morton(mm, la, Am, opa, A, lda);
  layout::to_morton(mm, lb, Bm, opb, B, ldb);
  const double t_in = t.seconds();

  t.restart();
  if (plan.schedule == analysis::ScheduleFamily::kInPlace) {
    // The in-place table overwrites its operands -- safe here because Am/Bm
    // are this call's own Morton staging copies, consumed by nothing after
    // the recursion.
    winograd_recurse_inplace(mm, Cm, Am, Bm, plan.m.tile, plan.k.tile,
                             plan.n.tile, plan.depth, arena);
  } else {
    winograd_recurse(mm, Cm, Am, Bm, plan.m.tile, plan.k.tile, plan.n.tile,
                     plan.depth, arena, plan.schedule);
  }
  const double t_mul = t.seconds();

  t.restart();
  layout::from_morton(mm, lc, Cm, alpha, C, ldc, beta);
  const double t_out = t.seconds();

  if (report) {
    report->convert_in_seconds += t_in;
    report->compute_seconds += t_mul;
    report->convert_out_seconds += t_out;
    report->plan = plan;
    report->plan.strategy = layout::ExecStrategy::kMorton;
    report->strategy = layout::strategy_name(layout::ExecStrategy::kMorton);
    // kAuto means the planner kept the default family: report what ran.
    report->schedule = analysis::family_name(
        plan.schedule == analysis::ScheduleFamily::kAuto
            ? analysis::ScheduleFamily::kWinograd
            : plan.schedule);
    if (plan.schedule != analysis::ScheduleFamily::kWinograd &&
        plan.schedule != analysis::ScheduleFamily::kAuto) {
      // Arena bytes the default 3-temporary family would have needed minus
      // what this family's recursion actually reserved.
      const std::size_t def = winograd_workspace_bytes(
          plan.m.tile, plan.k.tile, plan.n.tile, plan.depth, sizeof(T));
      const std::size_t got = winograd_workspace_bytes(
          plan.m.tile, plan.k.tile, plan.n.tile, plan.depth, sizeof(T),
          plan.schedule);
      if (def > got) report->workspace_saved_bytes += def - got;
    }
    ++report->products;
    report->workspace_peak_bytes =
        std::max(report->workspace_peak_bytes, arena.peak());
  }
}

// The self-allocating wrapper: sizes and owns the arena for one product
// (historical entry used by the serial ladder), keeping the per-call
// workspace accounting it always had.
template <class MM, class T>
void modgemm_strassen(MM& mm, Op opa, Op opb, int m, int n, int k, T alpha,
                      const T* A, int lda, const T* B, int ldb, T beta, T* C,
                      int ldc, const layout::GemmPlan& plan,
                      ModgemmReport* report) {
  const std::size_t workspace_bytes = modgemm_workspace_bytes(plan, sizeof(T));
  Arena arena(workspace_bytes);
  modgemm_strassen_arena(mm, opa, opb, m, n, k, alpha, A, lda, B, ldb, beta,
                         C, ldc, plan, arena, report);
  if (report) {
    report->workspace_requested_bytes += workspace_bytes;
    ++report->workspace_allocations;
  }
}

// The conventional path with its own last rung: gemm_blocked stages a
// transposed operand through a buffer, and if even that allocation fails,
// the allocation-free strided loop runs instead.  Either way the product
// completes; gemm_blocked too performs all allocation before its first
// write to C.
template <class MM, class T>
void modgemm_direct(MM& mm, Op opa, Op opb, int m, int n, int k, T alpha,
                    const T* A, int lda, const T* B, int ldb, T beta, T* C,
                    int ldc, ModgemmReport* report) {
  WallTimer t;
  try {
    blas::gemm_blocked(mm, opa, opb, m, n, k, alpha, A, lda, B, ldb, beta, C,
                       ldc);
  } catch (const std::bad_alloc&) {
    record_fallback(report, FallbackReason::kAllocStrided);
    blas::gemm_strided(mm, opa, opb, m, n, k, alpha, A, lda, B, ldb, beta, C,
                       ldc);
  }
  if (report) {
    report->compute_seconds += t.seconds();
    ++report->products;
  }
}

// One planned product: C(m x n) {<-,+=} alpha * op(A).op(B) + beta * C.
// Requires plan.feasible or plan.direct.  Degradation ladder: planned
// Strassen execution (Morton or pack-fused per plan.strategy) ->
// conventional blocked gemm (if workspace allocation fails) ->
// allocation-free strided gemm (if even staging fails).  Every rung computes
// the same correct product, so a valid call never leaves C partially
// updated.  A failed pack-fused acquisition degrades straight to the
// conventional path -- the Morton strategy needs strictly MORE memory, so
// retrying it could only fail again.
template <class MM, class T>
void modgemm_single(MM& mm, Op opa, Op opb, int m, int n, int k, T alpha,
                    const T* A, int lda, const T* B, int ldb, T beta, T* C,
                    int ldc, const layout::GemmPlan& plan,
                    ModgemmReport* report) {
  // Record the plan this product EXECUTES (budget degradation included), so
  // report->plan.direct is accurate even when no Strassen path runs.
  if (report) report->plan = plan;
  if (!plan.direct) {
    bool try_morton = true;
    if constexpr (std::is_same_v<MM, RawMem>) {
      if (plan.strategy == layout::ExecStrategy::kPackFused) {
        try_morton = false;
        try {
          modgemm_packfused(opa, opb, m, n, k, alpha, A, lda, B, ldb, beta, C,
                            ldc, plan, report);
          return;
        } catch (const std::bad_alloc&) {
          // The single up-front arena acquisition failed; C is untouched
          // (see modgemm_packfused).
          record_fallback(report, FallbackReason::kAllocDirect);
        }
      }
    }
    if (try_morton) {
      try {
        modgemm_strassen(mm, opa, opb, m, n, k, alpha, A, lda, B, ldb, beta,
                         C, ldc, plan, report);
        return;
      } catch (const std::bad_alloc&) {
        // Workspace allocation failed under real memory pressure (or a fault
        // injector).  C is untouched (see modgemm_strassen); degrade to the
        // conventional path, which needs no recursion workspace.
        record_fallback(report, FallbackReason::kAllocDirect);
      }
    }
  }
  modgemm_direct(mm, opa, opb, m, n, k, alpha, A, lda, B, ldb, beta, C, ldc,
                 report);
}

// Fused evaluation of one C block of a split product using the accumulating
// schedule: all k-chunks share a single Morton C buffer -- chunk 0 runs the
// overwriting recursion, later chunks run winograd_recurse_acc on top of it,
// and ONE from_morton applies alpha/beta at the end.  Compared to the
// per-chunk loop this removes n_k - 1 round trips of C through from_morton /
// to-column-major accumulation.  Only attempted for the low-memory families
// (the default family stays bit-identical to the per-chunk path).  Returns
// false -- with C untouched -- when the chunk geometries disagree, the fused
// workspace exceeds the budget, or allocation fails; the caller then runs
// the per-chunk loop.
template <class MM, class T>
bool modgemm_split_block_fused(MM& mm, Op opa, Op opb, const layout::Chunk& cm,
                               const layout::Chunk& cn,
                               const std::vector<layout::Chunk>& k_chunks,
                               T alpha, const T* A, int lda, const T* B,
                               int ldb, T beta, T* C, int ldc,
                               const ModgemmOptions& opt,
                               analysis::ScheduleFamily resolved,
                               ModgemmReport* report) {
  using analysis::ScheduleFamily;
  if (resolved != ScheduleFamily::kLowMem &&
      resolved != ScheduleFamily::kInPlace)
    return false;
  const int nk = static_cast<int>(k_chunks.size());
  if (nk < 2) return false;
  // Every k-chunk sub-plan must be a feasible Strassen plan agreeing on the
  // C-facing geometry (m/n tiles and depth) so the chunks can share one
  // Morton C buffer.
  std::vector<layout::GemmPlan> subs;
  subs.reserve(static_cast<std::size_t>(nk));
  for (const auto& ck : k_chunks) {
    layout::GemmPlan sub =
        layout::plan_gemm(cm.size, ck.size, cn.size, opt.tiles);
    sub = apply_workspace_budget(sub, cm.size, ck.size, cn.size, opt,
                                 sizeof(T), report, resolved);
    if (sub.direct || !sub.feasible) return false;
    if (!subs.empty() &&
        (sub.m.tile != subs[0].m.tile || sub.n.tile != subs[0].n.tile ||
         sub.depth != subs[0].depth))
      return false;
    subs.push_back(sub);
  }
  const int depth = subs[0].depth;
  const layout::MortonLayout lc{cm.size, cn.size, subs[0].m.tile,
                                subs[0].n.tile, depth};
  auto r64 = [](std::size_t b) { return checked_add(b, 63) / 64 * 64; };
  // Accumulating chunks recurse their sub-products with the low-mem table
  // (the in-place table runs only where the recursion owns the operands,
  // i.e. chunk 0's top level).
  const ScheduleFamily acc_fam = resolved == ScheduleFamily::kInPlace
                                     ? ScheduleFamily::kLowMem
                                     : resolved;
  std::size_t total = r64(layout::buffer_bytes(lc, sizeof(T)));
  std::size_t chunk_peak = 0;
  std::size_t saved = 0;
  for (int i = 0; i < nk; ++i) {
    const layout::GemmPlan& sub = subs[i];
    const layout::MortonLayout la{cm.size, k_chunks[i].size, sub.m.tile,
                                  sub.k.tile, depth};
    const layout::MortonLayout lb{k_chunks[i].size, cn.size, sub.k.tile,
                                  sub.n.tile, depth};
    const std::size_t ov = winograd_workspace_bytes(
        sub.m.tile, sub.k.tile, sub.n.tile, depth, sizeof(T), resolved);
    const std::size_t ac = winograd_accum_workspace_bytes(
        sub.m.tile, sub.k.tile, sub.n.tile, depth, sizeof(T), acc_fam);
    const std::size_t w = checked_add(
        checked_add(r64(layout::buffer_bytes(la, sizeof(T))),
                    r64(layout::buffer_bytes(lb, sizeof(T)))),
        std::max(ov, ac));
    chunk_peak = std::max(chunk_peak, w);
    const std::size_t def = winograd_workspace_bytes(
        sub.m.tile, sub.k.tile, sub.n.tile, depth, sizeof(T));
    if (def > ov) saved += def - ov;
  }
  total = checked_add(total, chunk_peak);
  // The budget bounds the call's live temporary set; the fused block holds
  // Cm across all chunks, so its peak must fit as a whole.
  if (opt.max_workspace_bytes != 0 && total > opt.max_workspace_bytes)
    return false;
  try {
    Arena arena(total);
    T* Cm = arena.push<T>(static_cast<std::size_t>(lc.elems()));
    WallTimer t;
    double t_in = 0;
    double t_mul = 0;
    for (int i = 0; i < nk; ++i) {
      const auto& ck = k_chunks[i];
      const layout::GemmPlan& sub = subs[i];
      const T* Ablk =
          opa == Op::NoTrans
              ? A + static_cast<std::size_t>(ck.offset) * lda + cm.offset
              : A + static_cast<std::size_t>(cm.offset) * lda + ck.offset;
      const T* Bblk =
          opb == Op::NoTrans
              ? B + static_cast<std::size_t>(cn.offset) * ldb + ck.offset
              : B + static_cast<std::size_t>(ck.offset) * ldb + cn.offset;
      const layout::MortonLayout la{cm.size, ck.size, sub.m.tile, sub.k.tile,
                                    depth};
      const layout::MortonLayout lb{ck.size, cn.size, sub.k.tile, sub.n.tile,
                                    depth};
      Arena::Frame frame(arena);
      T* Am = arena.push<T>(static_cast<std::size_t>(la.elems()));
      T* Bm = arena.push<T>(static_cast<std::size_t>(lb.elems()));
      t.restart();
      layout::to_morton(mm, la, Am, opa, Ablk, lda);
      layout::to_morton(mm, lb, Bm, opb, Bblk, ldb);
      t_in += t.seconds();
      t.restart();
      if (i == 0) {
        if (resolved == ScheduleFamily::kInPlace)
          winograd_recurse_inplace(mm, Cm, Am, Bm, sub.m.tile, sub.k.tile,
                                   sub.n.tile, depth, arena);
        else
          winograd_recurse(mm, Cm, Am, Bm, sub.m.tile, sub.k.tile, sub.n.tile,
                           depth, arena, resolved);
      } else {
        winograd_recurse_acc(mm, Cm, Am, Bm, sub.m.tile, sub.k.tile,
                             sub.n.tile, depth, arena, acc_fam);
      }
      t_mul += t.seconds();
    }
    t.restart();
    T* Cblk = C + static_cast<std::size_t>(cn.offset) * ldc + cm.offset;
    layout::from_morton(mm, lc, Cm, alpha, Cblk, ldc, beta);
    const double t_out = t.seconds();
    if (report) {
      report->convert_in_seconds += t_in;
      report->compute_seconds += t_mul;
      report->convert_out_seconds += t_out;
      report->plan = subs[0];
      report->plan.strategy = layout::ExecStrategy::kMorton;
      report->strategy = layout::strategy_name(layout::ExecStrategy::kMorton);
      report->schedule = analysis::family_name(resolved);
      report->workspace_saved_bytes += saved;
      report->products += nk;
      report->workspace_requested_bytes += total;
      ++report->workspace_allocations;
      report->workspace_peak_bytes =
          std::max(report->workspace_peak_bytes, arena.peak());
    }
    return true;
  } catch (const std::bad_alloc&) {
    // All allocation happens before the single from_morton write-back, so C
    // is untouched; the per-chunk ladder takes over.
    return false;
  }
}

// One level of a non-<2,2,2> coefficient table (core/family.hpp), with every
// sub-product recursing through modgemm_mm pinned to <2,2,2> -- so each of
// the rank products gets the planner, the workspace ladder, the strategy
// heuristic and the SIMD kernels exactly as a top-level call would.  Returns
// false -- with C untouched and FallbackReason::kAlgoFallback recorded --
// when the family cannot run: its staging buffers alone would reach
// max_workspace_bytes, or their up-front allocation fails.  The caller then
// continues on the plain <2,2,2> path.
template <class MM, class T>
bool modgemm_family(MM& mm, Op opa, Op opb, int m, int n, int k, T alpha,
                    const T* A, int lda, const T* B, int ldb, T beta, T* C,
                    int ldc, analysis::AlgoFamily algo,
                    const ModgemmOptions& opt, ModgemmReport* report) {
  const analysis::FamilyTable& t = analysis::family_table(algo);
  const std::size_t staging = family_workspace_bytes(t, m, k, n, sizeof(T));
  if (opt.max_workspace_bytes != 0 && staging >= opt.max_workspace_bytes) {
    record_fallback(report, FallbackReason::kAlgoFallback);
    return false;
  }
  const int pm = family_partition(m, t.bm);
  const int pk = family_partition(k, t.bk);
  const int pn = family_partition(n, t.bn);
  ModgemmOptions sub_opt = opt;
  // One level only: sub-products run the plain <2,2,2> driver (the pin wins
  // over STRASSEN_ALGO, so a forced environment cannot recurse the family),
  // inside whatever budget the staging buffers left.
  sub_opt.algo = analysis::AlgoFamily::k222;
  sub_opt.report = nullptr;
  if (opt.max_workspace_bytes != 0)
    sub_opt.max_workspace_bytes = opt.max_workspace_bytes - staging;
  // Sub-products report into a scratch struct so their executed
  // schedule/strategy and any degradation surface in the caller's report
  // without double-counting this call's wall clock (WallStamp accumulates).
  obs::GemmReport subrep;
  obs::GemmReport* subrep_ptr = report ? &subrep : nullptr;
  try {
    Arena arena(staging);
    modgemm_family_arena(
        mm, opa, opb, m, n, k, alpha, A, lda, B, ldb, beta, C, ldc, t, arena,
        [&](int m2, int n2, int k2, const T* A2, int lda2, const T* B2,
            int ldb2, T* C2, int ldc2) {
          modgemm_mm(mm, Op::NoTrans, Op::NoTrans, m2, n2, k2, T{1}, A2, lda2,
                     B2, ldb2, T{0}, C2, ldc2, sub_opt, subrep_ptr);
        },
        report);
    if (report) {
      record_fallback(report, subrep.fallback_reason);
      report->workspace_requested_bytes +=
          staging + subrep.workspace_requested_bytes;
      report->workspace_allocations += 1 + subrep.workspace_allocations;
      // True peak: the staging buffers stay live across every sub-product,
      // so the call's high-water mark is theirs plus the largest sub-peak.
      report->workspace_peak_bytes =
          std::max(report->workspace_peak_bytes,
                   arena.peak() + subrep.workspace_peak_bytes);
      report->workspace_saved_bytes += subrep.workspace_saved_bytes;
      report->conversion_saved_bytes += subrep.conversion_saved_bytes;
      // The executed plan: one family level over ceil partitions.  The
      // tile/depth fields of a family plan describe the partition grid, not
      // a <2,2,2> recursion (layout/plan.hpp documents this).
      layout::GemmPlan fam;
      fam.feasible = true;
      fam.depth = 1;
      fam.algo = algo;
      fam.schedule = subrep.plan.schedule;
      fam.strategy = subrep.plan.strategy;
      fam.m = layout::DimPlan{m, pm, 1, pm * t.bm};
      fam.k = layout::DimPlan{k, pk, 1, pk * t.bk};
      fam.n = layout::DimPlan{n, pn, 1, pn * t.bn};
      report->plan = fam;
      report->planned_depth = 1;
      if (subrep.schedule[0] != '\0') report->schedule = subrep.schedule;
      if (subrep.strategy[0] != '\0') report->strategy = subrep.strategy;
      report->algo = analysis::algo_name(algo);
    }
    return true;
  } catch (const std::bad_alloc&) {
    // The staging arena is fully pushed before any arithmetic and C is
    // written only by the final merge (core/family.hpp), so C is untouched;
    // sub-products own their ladders and leave C2 (a temporary) aside.
    record_fallback(report, FallbackReason::kAlgoFallback);
    return false;
  }
}

}  // namespace detail

// The full MODGEMM entry point, templated on the memory model so complete
// executions can be cache-simulated (paper Fig. 9).  Dimensions follow the
// dgemm convention: op(A) is m x k, op(B) is k x n, C is m x n.
template <class MM, class T>
void modgemm_mm(MM& mm, Op opa, Op opb, int m, int n, int k, T alpha,
                const T* A, int lda, const T* B, int ldb, T beta, T* C,
                int ldc, const ModgemmOptions& opt, ModgemmReport* report) {
  require_gemm_args(opa, opb, m, n, k, lda, ldb, ldc);
  // A typo'd STRASSEN_KERNEL fails the call here, loudly, instead of
  // silently dispatching the scalar table (the noexcept registry chain's
  // degrade-to-scalar remains as the crash-free backstop).
  blas::kernels::require_valid_kernel_env();
  std::optional<blas::kernels::ScopedKernel> kernel_pin;
  if (opt.kernel != blas::kernels::Kind::kAuto)
    kernel_pin.emplace(opt.kernel, opt.avx2_variant);
  if (report == nullptr) report = opt.report;
  obs::WallStamp wall(report);
  if (report) {
    report->m = m;
    report->n = n;
    report->k = k;
    // Stamped here, while the per-call pin (if any) is still installed.
    if constexpr (std::is_same_v<MM, RawMem> && std::is_same_v<T, double>) {
      report->kernel = blas::kernels::kind_name(blas::kernels::active_kernel());
      report->kernel_variant =
          blas::kernels::variant_name(blas::kernels::avx2_variant());
    } else {
      // Traced / non-double executions always run the generic scalar path.
      report->kernel = "generic";
      report->kernel_variant = "none";
    }
  }
  if (m == 0 || n == 0) return;
  if (alpha == T{0} || k == 0) {
    blas::scale_view(mm, m, n, C, ldc, beta);
    return;
  }

  // Resolve the schedule family once per call (pin, then STRASSEN_SCHEDULE,
  // then auto).  A malformed environment value throws here, before any write
  // to C.
  const analysis::ScheduleFamily resolved =
      detail::resolve_schedule_family(opt);

  // Resolve the execution strategy once per call (pin, then
  // STRASSEN_STRATEGY, then auto -- the per-plan heuristic decides kAuto
  // below).  Same loud-throw discipline for malformed environment values.
  // Traced / non-RawMem executions dereference operands through the memory
  // model, which the pack-fused leaf path bypasses, so they always run
  // kMorton (and skip the env read entirely, like their kernel stamping).
  layout::ExecStrategy strat = layout::ExecStrategy::kMorton;
  if constexpr (std::is_same_v<MM, RawMem>)
    strat = detail::resolve_exec_strategy(opt);

  // Resolve the <m,k,n> algorithm family once per call (pin, then
  // STRASSEN_ALGO, then the planner heuristic).  A non-<2,2,2> family runs
  // one level of its coefficient table with every sub-product recursing
  // through this driver pinned to <2,2,2>; when it cannot run (workspace
  // budget, allocation failure) the call continues below on the plain path
  // with FallbackReason::kAlgoFallback recorded.  The fixed-tile ablation
  // studies <2,2,2> static padding and never runs a family.
  analysis::AlgoFamily algo = analysis::AlgoFamily::k222;
  if (opt.fixed_tile == 0) {
    algo = detail::resolve_algo_family(opt);
    if (algo == analysis::AlgoFamily::kAuto)
      algo = layout::choose_algo(m, k, n, opt.tiles);
  }
  if (algo != analysis::AlgoFamily::k222) {
    // Shape gate, applied to pins and STRASSEN_ALGO alike: when the family's
    // ceil-partitioned sub-products sit at or below the direct threshold
    // they would all run conventional, so one family level multiplies
    // staging traffic by `rank` for nothing (the same rule choose_algo
    // prices in).  Such shapes degrade to the <2,2,2> ladder up front.
    const analysis::FamilyTable& t = analysis::family_table(algo);
    if (std::min({family_partition(m, t.bm),
                  family_partition(k, t.bk),
                  family_partition(n, t.bn)}) <=
        opt.tiles.direct_threshold) {
      detail::record_fallback(report, FallbackReason::kAlgoFallback);
      algo = analysis::AlgoFamily::k222;
    }
  }
  if (report) report->algo = analysis::algo_name(algo);
  if (algo != analysis::AlgoFamily::k222) {
    if (detail::modgemm_family(mm, opa, opb, m, n, k, alpha, A, lda, B, ldb,
                               beta, C, ldc, algo, opt, report))
      return;
    // The family could not run; everything below is the plain <2,2,2> path.
    if (report) report->algo = analysis::algo_name(analysis::AlgoFamily::k222);
  }

  if (opt.fixed_tile > 0) {
    // Ablation: static padding with a fixed truncation point.  The three
    // dimensions must then share a depth naturally, which holds for the
    // square problems this mode is meant for; otherwise we fall back to the
    // largest common depth.
    layout::GemmPlan plan;
    plan.m = layout::fixed_tile_dim(m, opt.fixed_tile);
    plan.k = layout::fixed_tile_dim(k, opt.fixed_tile);
    plan.n = layout::fixed_tile_dim(n, opt.fixed_tile);
    plan.depth =
        std::max({plan.m.depth, plan.k.depth, plan.n.depth});
    // Re-derive padded sizes at the common depth (tile stays fixed; shallower
    // dimensions get extra padding, exactly the static-padding cost).
    auto lift = [&](layout::DimPlan& d) {
      d.depth = plan.depth;
      d.padded = opt.fixed_tile << plan.depth;
      d.tile = opt.fixed_tile;
    };
    lift(plan.m);
    lift(plan.k);
    lift(plan.n);
    plan.feasible = true;
    plan.direct = plan.depth == 0;
    if (resolved != analysis::ScheduleFamily::kAuto) plan.schedule = resolved;
    plan.strategy = detail::plan_exec_strategy(strat, plan, m, k, n, opt.tiles);
    detail::modgemm_single(mm, opa, opb, m, n, k, alpha, A, lda, B, ldb, beta,
                           C, ldc, plan, report);
    return;
  }

  const layout::GemmPlan planned = layout::plan_gemm(m, k, n, opt.tiles);
  if (report) report->planned_depth = planned.depth;
  if (planned.direct || planned.feasible) {
    layout::GemmPlan plan = detail::apply_workspace_budget(
        planned, m, k, n, opt, sizeof(T), report, resolved);
    plan.strategy = detail::plan_exec_strategy(strat, plan, m, k, n, opt.tiles);
    detail::modgemm_single(mm, opa, opb, m, n, k, alpha, A, lda, B, ldb, beta,
                           C, ldc, plan, report);
    return;
  }

  // Highly rectangular: decompose into same-depth sub-products (paper Fig. 4)
  // and reconstruct C[i][j] = sum_r A[i][r] . B[r][j].
  const layout::SplitPlan split = layout::plan_split(m, k, n, opt.tiles);
  if (report) report->split_used = true;
  for (const auto& cm : split.m_chunks) {
    for (const auto& cn : split.n_chunks) {
      // Low-memory families first try the fused accumulating evaluation of
      // this block (one shared Morton C, a single alpha/beta write-back) --
      // a Morton-strategy optimization, so a pack-fused pin/env skips it in
      // favor of the per-chunk loop below.
      if (strat != layout::ExecStrategy::kPackFused &&
          detail::modgemm_split_block_fused(mm, opa, opb, cm, cn,
                                            split.k_chunks, alpha, A, lda, B,
                                            ldb, beta, C, ldc, opt, resolved,
                                            report))
        continue;
      bool first = true;
      for (const auto& ck : split.k_chunks) {
        // Locate the stored sub-blocks of op(A) and op(B).
        const T* Ablk =
            opa == Op::NoTrans
                ? A + static_cast<std::size_t>(ck.offset) * lda + cm.offset
                : A + static_cast<std::size_t>(cm.offset) * lda + ck.offset;
        const T* Bblk =
            opb == Op::NoTrans
                ? B + static_cast<std::size_t>(cn.offset) * ldb + ck.offset
                : B + static_cast<std::size_t>(ck.offset) * ldb + cn.offset;
        T* Cblk = C + static_cast<std::size_t>(cn.offset) * ldc + cm.offset;
        layout::GemmPlan sub =
            layout::plan_gemm(cm.size, ck.size, cn.size, opt.tiles);
        STRASSEN_ASSERT(sub.direct || sub.feasible);
        // The budget bounds the workspace of each sub-product (they run
        // sequentially, so the per-product peak is the call's peak).
        sub = detail::apply_workspace_budget(sub, cm.size, ck.size, cn.size,
                                             opt, sizeof(T), report, resolved);
        sub.strategy = detail::plan_exec_strategy(strat, sub, cm.size, ck.size,
                                                  cn.size, opt.tiles);
        detail::modgemm_single(mm, opa, opb, cm.size, cn.size, ck.size, alpha,
                               Ablk, lda, Bblk, ldb, first ? beta : T{1}, Cblk,
                               ldc, sub, report);
        first = false;
      }
    }
  }
}

// Production entry points (RawMem).
void modgemm(Op opa, Op opb, int m, int n, int k, double alpha,
             const double* A, int lda, const double* B, int ldb, double beta,
             double* C, int ldc, const ModgemmOptions& opt = {},
             ModgemmReport* report = nullptr);
void modgemm(Op opa, Op opb, int m, int n, int k, float alpha, const float* A,
             int lda, const float* B, int ldb, float beta, float* C, int ldc,
             const ModgemmOptions& opt = {}, ModgemmReport* report = nullptr);

// Nothrow entry points for embedders that cannot unwind (C/Fortran callers,
// exception-free services): identical semantics to modgemm, but argument
// errors and runtime failures come back as a strassen::Status instead of an
// exception.  On an argument-error status C is untouched.  Note that thanks
// to the degradation ladder, kOutOfMemory is only returned when even the
// allocation-free fallback could not be reached.
Status try_modgemm(Op opa, Op opb, int m, int n, int k, double alpha,
                   const double* A, int lda, const double* B, int ldb,
                   double beta, double* C, int ldc,
                   const ModgemmOptions& opt = {},
                   ModgemmReport* report = nullptr) noexcept;
Status try_modgemm(Op opa, Op opb, int m, int n, int k, float alpha,
                   const float* A, int lda, const float* B, int ldb,
                   float beta, float* C, int ldc,
                   const ModgemmOptions& opt = {},
                   ModgemmReport* report = nullptr) noexcept;

}  // namespace strassen::core
