// analysis/algo_verify.hpp -- symbolic verification of <m,k,n> family tables.
//
// Extends the schedule prover (analysis/schedule_verify.hpp) from the fixed
// 2x2 quadrant program to arbitrary <bm,bk,bn> coefficient tables
// (analysis/algo_family.hpp).  The table IS the whole program -- there is no
// step ordering to check -- so verification reduces to exact integer
// algebra over the monomial space A_il (x) B_lpj:
//
//   1. dims           1 <= bm,bk,bn <= kMaxBlockDim, 1 <= rank <= kMaxRank,
//                     arrays present;
//   2. coefficients   every entry of a/b/c is -1, 0 or +1 (the interpreter
//                     stages combinations with adds/subtracts only);
//   3. empty factor   no product multiplies an empty A or B combination;
//   4. product identity  for every C block (i,j),
//                        sum_r c[ij][r] * (a_r (x) b_r) == sum_l A_il B_lj
//                     as bilinear forms over NONCOMMUTING blocks -- checked
//                     monomial by monomial, so a wrong coefficient sign or a
//                     bad C-accumulation row is pinpointed to the first
//                     mismatching (i,l)x(l',j) monomial;
//   5. dead product   every product is consumed by some C row;
//   6. admissible rank   rank <= bm*bk*bn (never worse than the naive
//                     algorithm it replaces);
//   7. temp peak      declared_temp_peak covers the staging buffers the
//                     one-level interpreter materializes for this table.
//
// The core is constexpr and reports the FIRST violation with its product /
// C-block / monomial coordinates; algo_verify.cpp static_asserts it over
// every shipped table, so a broken table fails the library build.  The
// runtime layer re-runs the core and formats the same coordinates into
// step-precise diagnostics for tools/verify_schedules and the negative
// tests.
#pragma once

#include <string>
#include <vector>

#include "analysis/algo_family.hpp"

namespace strassen::analysis {

// Hard bounds of the constexpr core's scratch arrays; every shipped table is
// far below them.
inline constexpr int kMaxBlockDim = 4;
inline constexpr int kMaxRank = 32;

enum class FamilyViolation {
  kNone = 0,
  kBadDims,          // block grid or rank outside [1, bound], missing array
  kBadCoefficient,   // a/b/c entry outside {-1, 0, +1}
  kEmptyFactor,      // a product with an all-zero A or B combination
  kProductIdentity,  // some C block's bilinear form misses its target
  kDeadProduct,      // a product no C row consumes
  kInadmissibleRank, // rank exceeds the trivial bm*bk*bn
  kTempPeakMismatch, // declared_temp_peak != the interpreter's requirement
};

constexpr const char* family_violation_name(FamilyViolation v) {
  switch (v) {
    case FamilyViolation::kNone: return "none";
    case FamilyViolation::kBadDims: return "bad-dims";
    case FamilyViolation::kBadCoefficient: return "bad-coefficient";
    case FamilyViolation::kEmptyFactor: return "empty-factor";
    case FamilyViolation::kProductIdentity: return "product-identity";
    case FamilyViolation::kDeadProduct: return "dead-product";
    case FamilyViolation::kInadmissibleRank: return "inadmissible-rank";
    case FamilyViolation::kTempPeakMismatch: return "temp-peak-mismatch";
  }
  return "?";
}

// First violation with its coordinates.  `product` indexes the offending
// product (kEmptyFactor, kDeadProduct, kBadCoefficient in a/b), `ci`/`cj`
// the offending C block, and for kProductIdentity (ai,al)x(bl,bj) names the
// first mismatching monomial with the got/want coefficients.
struct FamilyCoreResult {
  FamilyViolation violation = FamilyViolation::kNone;
  int product = -1;
  int ci = -1, cj = -1;
  int ai = -1, al = -1, bl = -1, bj = -1;
  int got = 0, want = 0;
  // Derived statistics (valid when violation == kNone).
  int rank = 0;
  int linear_ops = 0;  // nonzero a/b/c coefficients beyond the first per row
  int temp_peak = 0;   // staging buffers the interpreter materializes
};

// Staging buffers the one-level interpreter (core/family.hpp) keeps live for
// this table: the A-combination and B-combination buffers (needed as soon as
// ANY product combines 2+ blocks or negates one -- the interpreter stages
// uniformly rather than special-casing pass-through products) and the
// product buffer (always, C blocks accumulate several products).
constexpr int family_required_temp_peak(const FamilyTable& t) {
  bool needs_asum = false;
  bool needs_bsum = false;
  for (int r = 0; r < t.rank; ++r) {
    int na = 0, nb = 0;
    for (int s = 0; s < t.bm * t.bk; ++s) na += t.a[r * t.bm * t.bk + s] != 0;
    for (int s = 0; s < t.bk * t.bn; ++s) nb += t.b[r * t.bk * t.bn + s] != 0;
    if (na != 1) needs_asum = true;
    if (nb != 1) needs_bsum = true;
    for (int s = 0; s < t.bm * t.bk; ++s)
      if (t.a[r * t.bm * t.bk + s] < 0) needs_asum = true;
    for (int s = 0; s < t.bk * t.bn; ++s)
      if (t.b[r * t.bk * t.bn + s] < 0) needs_bsum = true;
  }
  return (needs_asum ? 1 : 0) + (needs_bsum ? 1 : 0) + 1;
}

// The constexpr prover.  Returns the first violation (checks in the order
// documented above) or kNone plus the derived statistics.
constexpr FamilyCoreResult verify_family_core(const FamilyTable& t) {
  FamilyCoreResult res;
  // 1. dims.
  if (t.bm < 1 || t.bm > kMaxBlockDim || t.bk < 1 || t.bk > kMaxBlockDim ||
      t.bn < 1 || t.bn > kMaxBlockDim || t.rank < 1 || t.rank > kMaxRank ||
      t.a == nullptr || t.b == nullptr || t.c == nullptr) {
    res.violation = FamilyViolation::kBadDims;
    return res;
  }
  const int na = t.bm * t.bk;  // A blocks
  const int nb = t.bk * t.bn;  // B blocks
  const int nc = t.bm * t.bn;  // C blocks
  // 2. coefficient range.
  for (int r = 0; r < t.rank; ++r) {
    for (int s = 0; s < na; ++s) {
      const int v = t.a[r * na + s];
      if (v < -1 || v > 1) {
        res.violation = FamilyViolation::kBadCoefficient;
        res.product = r;
        res.ai = s / t.bk;
        res.al = s % t.bk;
        res.got = v;
        return res;
      }
    }
    for (int s = 0; s < nb; ++s) {
      const int v = t.b[r * nb + s];
      if (v < -1 || v > 1) {
        res.violation = FamilyViolation::kBadCoefficient;
        res.product = r;
        res.bl = s / t.bn;
        res.bj = s % t.bn;
        res.got = v;
        return res;
      }
    }
  }
  for (int cb = 0; cb < nc; ++cb) {
    for (int r = 0; r < t.rank; ++r) {
      const int v = t.c[cb * t.rank + r];
      if (v < -1 || v > 1) {
        res.violation = FamilyViolation::kBadCoefficient;
        res.product = r;
        res.ci = cb / t.bn;
        res.cj = cb % t.bn;
        res.got = v;
        return res;
      }
    }
  }
  // 3. empty factors.
  for (int r = 0; r < t.rank; ++r) {
    int nza = 0, nzb = 0;
    for (int s = 0; s < na; ++s) nza += t.a[r * na + s] != 0;
    for (int s = 0; s < nb; ++s) nzb += t.b[r * nb + s] != 0;
    if (nza == 0 || nzb == 0) {
      res.violation = FamilyViolation::kEmptyFactor;
      res.product = r;
      return res;
    }
  }
  // 4. product identity, monomial by monomial: for C block (i,j), the
  // coefficient of A_{ai,al} B_{bl,bj} must be 1 when ai==i, bj==j, al==bl
  // and 0 otherwise.
  for (int i = 0; i < t.bm; ++i) {
    for (int j = 0; j < t.bn; ++j) {
      for (int ai = 0; ai < t.bm; ++ai) {
        for (int al = 0; al < t.bk; ++al) {
          for (int bl = 0; bl < t.bk; ++bl) {
            for (int bj = 0; bj < t.bn; ++bj) {
              int acc = 0;
              for (int r = 0; r < t.rank; ++r) {
                const int g = t.c[(i * t.bn + j) * t.rank + r];
                if (g == 0) continue;
                acc += g * t.a[r * na + ai * t.bk + al] *
                       t.b[r * nb + bl * t.bn + bj];
              }
              const int want = (ai == i && bj == j && al == bl) ? 1 : 0;
              if (acc != want) {
                res.violation = FamilyViolation::kProductIdentity;
                res.ci = i;
                res.cj = j;
                res.ai = ai;
                res.al = al;
                res.bl = bl;
                res.bj = bj;
                res.got = acc;
                res.want = want;
                return res;
              }
            }
          }
        }
      }
    }
  }
  // 5. dead products.
  for (int r = 0; r < t.rank; ++r) {
    bool used = false;
    for (int cb = 0; cb < nc; ++cb) used = used || t.c[cb * t.rank + r] != 0;
    if (!used) {
      res.violation = FamilyViolation::kDeadProduct;
      res.product = r;
      return res;
    }
  }
  // 6. admissible rank.
  if (t.rank > t.trivial_rank()) {
    res.violation = FamilyViolation::kInadmissibleRank;
    res.got = t.rank;
    res.want = t.trivial_rank();
    return res;
  }
  // 7. temp peak.
  const int need = family_required_temp_peak(t);
  if (t.declared_temp_peak != need) {
    res.violation = FamilyViolation::kTempPeakMismatch;
    res.got = t.declared_temp_peak;
    res.want = need;
    return res;
  }
  res.rank = t.rank;
  res.temp_peak = need;
  for (int r = 0; r < t.rank; ++r) {
    int nza = 0, nzb = 0;
    for (int s = 0; s < na; ++s) nza += t.a[r * na + s] != 0;
    for (int s = 0; s < nb; ++s) nzb += t.b[r * nb + s] != 0;
    res.linear_ops += (nza - 1) + (nzb - 1);
  }
  for (int cb = 0; cb < nc; ++cb) {
    int nzc = 0;
    for (int r = 0; r < t.rank; ++r) nzc += t.c[cb * t.rank + r] != 0;
    if (nzc > 0) res.linear_ops += nzc - 1;
  }
  return res;
}

// Runtime layer: re-runs the core and formats every violation (the core
// stops at the first; the runtime version iterates by masking, which for a
// coefficient table means at most a handful of messages) into step-precise
// diagnostics.  Empty result == verified.  Implemented in algo_verify.cpp.
std::vector<std::string> verify_family(const FamilyTable& t);

}  // namespace strassen::analysis
