#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <new>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "common/check.hpp"
#include "obs/collector.hpp"

namespace strassen::parallel {

namespace {
// Worker identity of the current thread: index within -- and owning pool of
// -- the worker running here; (-1, nullptr) outside any pool.  The index
// feeds per-thread task telemetry; the pool pointer routes submit() from a
// worker onto its own deque (and only for its own pool -- a worker
// submitting into a DIFFERENT pool goes through that pool's inject queue).
thread_local int tl_worker_index = -1;
thread_local ThreadPool* tl_worker_pool = nullptr;

// Installed submit gate and its user pointer, read under a mutex so an
// install never races a concurrent submission into a torn (gate, user) pair
// (same scheme as AlignedBuffer's allocation gate).  Unlike allocations --
// a handful per multiply -- submissions number in the thousands with deep
// spawning, so the common no-gate case is a single relaxed atomic load and
// the mutex is only touched while a gate is installed (tests).
std::atomic<bool> g_submit_gate_active{false};
std::mutex g_submit_gate_mutex;
ThreadPool::SubmitGate g_submit_gate = nullptr;
void* g_submit_gate_user = nullptr;

bool submit_gate_allows() {
  if (!g_submit_gate_active.load(std::memory_order_acquire)) return true;
  ThreadPool::SubmitGate gate;
  void* user;
  {
    std::lock_guard<std::mutex> lock(g_submit_gate_mutex);
    gate = g_submit_gate;
    user = g_submit_gate_user;
  }
  return gate == nullptr || gate(user);
}

bool env_flag_enabled(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr) return false;
  return std::strcmp(v, "1") == 0 || std::strcmp(v, "on") == 0 ||
         std::strcmp(v, "true") == 0 || std::strcmp(v, "yes") == 0;
}

// Nanoseconds spent in observed tasks nested inside the currently-running
// observed task on THIS thread.  Help-first joins make nesting routine: a
// task blocked in TaskGroup::wait() runs other tasks inline, and its own
// elapsed time contains theirs.  Each task therefore reports EXCLUSIVE time
// (elapsed minus nested), so task_busy_seconds sums to real busy time
// instead of multiply counting every level of the spawn tree.
thread_local std::uint64_t tl_nested_nanos = 0;

// Observed TaskGroup frames currently on this thread's stack.  Nonzero means
// an enclosing task is timing itself, so even an UNOBSERVED nested task must
// charge its elapsed time upward -- otherwise an observed task that
// help-runs a task from an unobserved call would absorb that task's time
// into its own exclusive time and inflate task_busy_seconds.
thread_local int tl_observed_depth = 0;

// Runs `task`, timing its exclusive execution into `col` when an observed
// call is in flight.  Used by every TaskGroup execution path (inline and
// pooled -- the pool wrapper calls this with the submit-time collector
// re-installed).  A throwing task still charges its elapsed time to the
// enclosing task, but notes nothing itself (it did not complete).
void run_observed(const std::function<void()>& task, obs::Collector* col) {
  if (col == nullptr) {
    if (tl_observed_depth == 0) {
      task();
      return;
    }
    // Unobserved task inside an observed frame: note nothing, but run the
    // same save/zero/restore dance so observed tasks nested in THIS one are
    // not double counted into the enclosing frame's nested time.
    const std::uint64_t saved = tl_nested_nanos;
    tl_nested_nanos = 0;
    const std::uint64_t t0 = obs::now_nanos();
    try {
      task();
    } catch (...) {
      tl_nested_nanos = saved + (obs::now_nanos() - t0);
      throw;
    }
    tl_nested_nanos = saved + (obs::now_nanos() - t0);
    return;
  }
  obs::ScopedCollector install(col);
  const std::uint64_t saved = tl_nested_nanos;
  tl_nested_nanos = 0;
  ++tl_observed_depth;
  const std::uint64_t t0 = obs::now_nanos();
  try {
    task();
  } catch (...) {
    --tl_observed_depth;
    tl_nested_nanos = saved + (obs::now_nanos() - t0);
    throw;
  }
  --tl_observed_depth;
  const std::uint64_t elapsed = obs::now_nanos() - t0;
  const std::uint64_t nested = std::min(tl_nested_nanos, elapsed);
  tl_nested_nanos = saved + elapsed;
  col->note_task(ThreadPool::current_worker_index(), elapsed - nested);
}
}  // namespace

int ThreadPool::current_worker_index() noexcept { return tl_worker_index; }

int ThreadPool::parse_thread_count(const char* value) {
  STRASSEN_REQUIRE(value != nullptr && *value != '\0',
                   "STRASSEN_THREADS: empty value");
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(value, &end, 10);
  STRASSEN_REQUIRE(end != value && *end == '\0',
                   "STRASSEN_THREADS: not an integer: \"" << value << "\"");
  STRASSEN_REQUIRE(errno != ERANGE && v >= 1 && v <= 4096,
                   "STRASSEN_THREADS: out of range [1, 4096]: \"" << value
                                                                  << "\"");
  return static_cast<int>(v);
}

int ThreadPool::default_thread_count() {
  if (const char* env = std::getenv("STRASSEN_THREADS")) {
    // Set but malformed is a loud error: a typo'd width must not silently
    // run at hardware concurrency.  Empty means unset.
    if (*env != '\0') return parse_thread_count(env);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) threads = default_thread_count();
  deques_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i)
    deques_.push_back(std::make_unique<WorkDeque>());
  const bool pin = env_flag_enabled("STRASSEN_NUMA");
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] {
      tl_worker_index = i;
      tl_worker_pool = this;
      worker_loop(i);
    });
#if defined(__linux__)
    if (pin) {
      // Round-robin CPU pinning.  With first-touch allocation and the
      // per-thread arena cache, this binds each worker's scratch memory to
      // its own NUMA node for the pool's lifetime.  Best effort: pinning may
      // fail under restrictive cpusets, in which case the scheduler places
      // the thread as usual.
      const unsigned cpus = std::max(1u, std::thread::hardware_concurrency());
      cpu_set_t set;
      CPU_ZERO(&set);
      CPU_SET(static_cast<unsigned>(i) % cpus, &set);
      if (pthread_setaffinity_np(workers_.back().native_handle(), sizeof(set),
                                 &set) == 0)
        numa_pinned_ = true;
    }
#else
    (void)pin;
#endif
  }
}

ThreadPool::~ThreadPool() {
  stopping_.store(true, std::memory_order_release);
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  STRASSEN_REQUIRE(task != nullptr, "null task");
  // Fire-and-forget: deliberately no collector.  The submitting call's
  // Collector lives in its CallScope, and with no join point the task could
  // run after that scope unwound -- a dangling note_steal/note_task.
  enqueue(PoolTask{std::move(task), nullptr, false});
}

void ThreadPool::set_submit_gate(SubmitGate gate, void* user) noexcept {
  {
    std::lock_guard<std::mutex> lock(g_submit_gate_mutex);
    g_submit_gate = gate;
    g_submit_gate_user = user;
  }
  // Published AFTER the pair is consistent; a concurrent submission that
  // still sees the flag set after an uninstall reads (nullptr, _) under the
  // mutex and allows.
  g_submit_gate_active.store(gate != nullptr, std::memory_order_release);
}

void ThreadPool::enqueue(PoolTask t) {
  if (!submit_gate_allows()) throw std::bad_alloc();
  if (tl_worker_pool == this && tl_worker_index >= 0 &&
      tl_worker_index < static_cast<int>(deques_.size())) {
    deques_[static_cast<std::size_t>(tl_worker_index)]->push_bottom(
        std::move(t));
  } else {
    t.injected = true;
    inject_.push_bottom(std::move(t));
  }
  // Lockless peek: a worker between its idle_ increment and the timed wait
  // can miss this notify, but the 1ms bounded wait covers that race.
  if (idle_.load(std::memory_order_relaxed) > 0) cv_.notify_one();
}

bool ThreadPool::find_task(int me, PoolTask& out) {
  const int n = static_cast<int>(deques_.size());
  if (me >= 0 && me < n) {
    // 1. Own deque, newest first: depth-first on our own subtree.
    if (deques_[static_cast<std::size_t>(me)]->pop_bottom(out)) return true;
    // 2. Injection queue, then victims round-robin from our right neighbor;
    //    steal-half moves a batch, we run its oldest entry and park the rest
    //    on our own deque (where other thieves can sub-steal them).
    std::vector<PoolTask> batch;
    for (int i = 0; i <= n; ++i) {
      WorkDeque& victim =
          i == 0 ? inject_ : *deques_[static_cast<std::size_t>((me + i) % n)];
      if (i != 0 && (me + i) % n == me) continue;
      const std::size_t got = victim.steal_top_half(batch);
      if (got == 0) continue;
      if (i != 0) {
        // A real worker-to-worker migration.  Injection-queue work parked
        // on the victim's deque by an earlier grab keeps its exemption: it
        // never had an owning worker, so moving it again is not a steal.
        std::size_t stolen = 0;
        for (PoolTask& pt : batch) {
          if (pt.injected) continue;
          ++stolen;
          if (pt.col != nullptr) pt.col->note_steal();
        }
        if (stolen > 0) steals_.fetch_add(stolen, std::memory_order_relaxed);
      }
      out = std::move(batch.front());
      for (std::size_t j = 1; j < batch.size(); ++j)
        deques_[static_cast<std::size_t>(me)]->push_bottom(
            std::move(batch[j]));
      if (batch.size() > 1 && idle_.load(std::memory_order_relaxed) > 0)
        cv_.notify_one();
      return true;
    }
    return false;
  }
  // External helper (TaskGroup::wait on a non-worker thread): no deque to
  // park surplus on, so take single tasks -- injection queue first.
  if (inject_.steal_top(out)) return true;
  for (int v = 0; v < n; ++v) {
    if (deques_[static_cast<std::size_t>(v)]->steal_top(out)) {
      if (!out.injected) {
        steals_.fetch_add(1, std::memory_order_relaxed);
        if (out.col != nullptr) out.col->note_steal();
      }
      return true;
    }
  }
  return false;
}

// Runs one scheduled task on the current thread.  Re-installs the collector
// captured at submit() so kernel hooks inside the task attribute to the call
// that spawned it.  Task timing/counting happens INSIDE the task body
// (TaskGroup wraps with run_observed), not here: the group's pending count
// only drops after the note lands, so a collector is never touched after
// its call returned.  An escaping exception is parked in the pool's error
// slot; TaskGroup tasks catch their own exceptions before this sees them,
// so the slot only ever holds fire-and-forget escapes.
void ThreadPool::execute(PoolTask& task) {
  executed_.fetch_add(1, std::memory_order_relaxed);
  obs::ScopedCollector install(task.col);
  try {
    task.fn();
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!error_) error_ = std::current_exception();
  }
}

std::exception_ptr ThreadPool::take_error() {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::exchange(error_, nullptr);
}

bool ThreadPool::try_run_one() {
  const int me = tl_worker_pool == this ? tl_worker_index : -1;
  PoolTask task;
  if (!find_task(me, task)) return false;
  execute(task);
  return true;
}

void ThreadPool::worker_loop(int me) {
  for (;;) {
    PoolTask task;
    if (find_task(me, task)) {
      execute(task);
      continue;
    }
    if (stopping_.load(std::memory_order_acquire)) return;
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.fetch_add(1, std::memory_order_relaxed);
    // Timed wait: a submit() racing our idle_ increment may skip the
    // notify, so never sleep unboundedly on the condition alone.
    cv_.wait_for(lock, std::chrono::milliseconds(1));
    idle_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void TaskGroup::run(std::function<void()> task) {
  if (pool_ == nullptr) {
    // Inline execution still defers the exception to wait(), so callers see
    // one surfacing point regardless of whether a pool is attached.
    try {
      run_observed(task, obs::current());
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++pending_;
  }
  // The pool re-installs the collector captured here before running this
  // wrapper, so run_observed sees it via obs::current() and notes the task
  // BEFORE pending_ drops -- a joined group therefore never leaves a note
  // racing the caller's report finalization.  The collector is safe to ship
  // (unlike the fire-and-forget submit()) because wait()/~TaskGroup keep the
  // call -- and its collector -- alive until every task finished.
  try {
    pool_->enqueue(PoolTask{[this, task = std::move(task)] {
                              std::exception_ptr err;
                              try {
                                run_observed(task, obs::current());
                              } catch (...) {
                                err = std::current_exception();
                              }
                              std::lock_guard<std::mutex> lock(mutex_);
                              if (err && !error_) error_ = err;
                              --pending_;
                              if (pending_ == 0) cv_.notify_all();
                            },
                            obs::current(), false});
  } catch (...) {
    // bad_alloc building the std::function or pushing onto the deque: the
    // task was never enqueued, so roll the count back or join()/~TaskGroup
    // would spin forever -- deadlocking the very serial fallbacks (pmodgemm,
    // split_parallel) that catch this rethrow to finish the work inline.
    std::lock_guard<std::mutex> lock(mutex_);
    --pending_;
    if (pending_ == 0) cv_.notify_all();
    throw;
  }
}

void TaskGroup::join() {
  for (;;) {
    // Help-first: drain runnable work on this thread before blocking, so a
    // worker waiting on its children never starves them of a thread.  With
    // work stealing this also lets the waiting thread pick up its own
    // children even after a thief moved them.
    if (pool_ != nullptr) {
      while (pool_->try_run_one()) {
      }
    }
    std::unique_lock<std::mutex> lock(mutex_);
    if (pending_ == 0) return;
    // Our tasks may be in flight on other workers (nothing runnable here,
    // pending nonzero); bounded wait covers the race with new arrivals.
    cv_.wait_for(lock, std::chrono::milliseconds(1),
                 [this] { return pending_ == 0; });
    if (pending_ == 0) return;
  }
}

void TaskGroup::wait() {
  join();
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    err = std::exchange(error_, nullptr);
  }
  if (err) std::rethrow_exception(err);
}

void parallel_for(ThreadPool* pool, std::int64_t begin, std::int64_t end,
                  std::int64_t min_grain,
                  const std::function<void(std::int64_t, std::int64_t)>& fn) {
  STRASSEN_REQUIRE(min_grain >= 1, "grain must be positive: " << min_grain);
  const std::int64_t count = end - begin;
  if (count <= 0) return;
  const int width = pool ? pool->thread_count() : 1;
  if (width <= 1 || count <= min_grain) {
    fn(begin, end);
    return;
  }
  const std::int64_t chunks =
      std::min<std::int64_t>(width, (count + min_grain - 1) / min_grain);
  const std::int64_t per = (count + chunks - 1) / chunks;
  TaskGroup group(pool);
  for (std::int64_t c = begin; c < end; c += per) {
    const std::int64_t hi = std::min(end, c + per);
    group.run([&fn, c, hi] { fn(c, hi); });
  }
  group.wait();
}

}  // namespace strassen::parallel
