#include "tune/plan_cache.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "blas/kernels/registry.hpp"

namespace strassen::tune {

// ---- PlanCache --------------------------------------------------------------

std::uint64_t hash_plan_key(const PlanKey& key) noexcept {
  // FNV-1a over the fields (not the raw bytes: padding would poison it).
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.m)));
  mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.k)));
  mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.n)));
  mix(key.opa);
  mix(key.opb);
  mix(key.schedule);
  mix(key.strategy);
  mix(key.algo);
  mix(key.elem_size);
  mix(key.max_workspace_bytes);
  mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.min_tile)));
  mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.max_tile)));
  mix(static_cast<std::uint64_t>(
      static_cast<std::uint32_t>(key.preferred_tile)));
  mix(static_cast<std::uint64_t>(
      static_cast<std::uint32_t>(key.direct_threshold)));
  mix(static_cast<std::uint64_t>(
      static_cast<std::uint32_t>(key.packfused_max_depth)));
  mix(key.avoid_conflict_cache_bytes);
  mix(key.conflict_elem_bytes);
  mix(key.max_tile_working_set_bytes);
  return h;
}

PlanCache::~PlanCache() { clear(); }

const CachedPlan* PlanCache::lookup(const PlanKey& key) const noexcept {
  std::size_t idx = hash_plan_key(key) & (kSlots - 1);
  for (std::size_t probe = 0; probe < kMaxProbe; ++probe) {
    const Entry* e = slots_[idx].load(std::memory_order_acquire);
    if (e == nullptr) break;  // never published past this point
    if (e->key == key) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return &e->value;
    }
    idx = (idx + 1) & (kSlots - 1);
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

const CachedPlan* PlanCache::insert(const PlanKey& key,
                                    const CachedPlan& value) {
  std::lock_guard<std::mutex> lock(write_mutex_);
  std::size_t idx = hash_plan_key(key) & (kSlots - 1);
  for (std::size_t probe = 0; probe < kMaxProbe; ++probe) {
    Entry* e = slots_[idx].load(std::memory_order_relaxed);
    if (e == nullptr) {
      Entry* fresh = new Entry{key, value};
      // The release store is the publication point: a reader that acquires
      // this pointer sees the fully constructed entry.
      slots_[idx].store(fresh, std::memory_order_release);
      entries_.fetch_add(1, std::memory_order_relaxed);
      return &fresh->value;
    }
    if (e->key == key) return &e->value;  // racing writer got here first
    idx = (idx + 1) & (kSlots - 1);
  }
  rejected_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

PlanCache::Stats PlanCache::stats() const noexcept {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.entries = entries_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  return s;
}

void PlanCache::clear() noexcept {
  std::lock_guard<std::mutex> lock(write_mutex_);
  for (auto& slot : slots_) {
    delete slot.load(std::memory_order_relaxed);
    slot.store(nullptr, std::memory_order_relaxed);
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  entries_.store(0, std::memory_order_relaxed);
  rejected_.store(0, std::memory_order_relaxed);
}

PlanCache& global_plan_cache() {
  // Leaked on purpose: batched calls may race process teardown, and a
  // destructed cache would dangle their reads.
  static PlanCache* cache = new PlanCache();
  return *cache;
}

// ---- tune cache file --------------------------------------------------------

namespace {

constexpr const char* kTuneCacheMagic = "strassen.tune_cache.v1";

// "avx2-8x6" style value round-trippable through parse_kernel_name.
std::string kernel_value(blas::kernels::Kind kind,
                         blas::kernels::Avx2Variant variant) {
  using blas::kernels::Avx2Variant;
  std::string v = blas::kernels::kind_name(kind);
  if (kind == blas::kernels::Kind::kAvx2) {
    if (variant == Avx2Variant::k8x6) v += "-8x6";
    if (variant == Avx2Variant::k4x8) v += "-4x8";
  }
  return v;
}

void set_error(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
}

}  // namespace

const char* tune_cache_status_name(TuneCacheStatus s) noexcept {
  switch (s) {
    case TuneCacheStatus::kOk: return "ok";
    case TuneCacheStatus::kMissing: return "missing";
    case TuneCacheStatus::kCorrupt: return "corrupt";
    case TuneCacheStatus::kFingerprintMismatch: return "fingerprint-mismatch";
  }
  return "unknown";
}

std::string tune_cache_fingerprint() {
  using blas::kernels::Kind;
  std::ostringstream os;
  os << "v1;compiled=";
  bool first = true;
  for (Kind k : blas::kernels::compiled_kernels()) {
    os << (first ? "" : ",") << blas::kernels::kind_name(k);
    if (const blas::kernels::LeafKernels* t = blas::kernels::kernel_table(k))
      os << ':' << t->mr << 'x' << t->nr;
    first = false;
  }
  os << ";available=";
  first = true;
  for (Kind k : blas::kernels::available_kernels()) {
    os << (first ? "" : ",") << blas::kernels::kind_name(k);
    first = false;
  }
  os << ";elem=" << sizeof(double);
  return os.str();
}

TuneCacheStatus load_tune_cache(const std::string& path, TuneCacheEntry* out,
                                std::string* error) {
  std::ifstream in(path);
  if (!in.is_open()) {
    set_error(error, "cannot open " + path);
    return TuneCacheStatus::kMissing;
  }
  std::string line;
  if (!std::getline(in, line) || line != kTuneCacheMagic) {
    set_error(error, "bad magic line (expected " +
                         std::string(kTuneCacheMagic) + ")");
    return TuneCacheStatus::kCorrupt;
  }
  if (!std::getline(in, line) || line.rfind("fingerprint ", 0) != 0) {
    set_error(error, "missing fingerprint line");
    return TuneCacheStatus::kCorrupt;
  }
  const std::string fp = line.substr(12);
  const std::string want = tune_cache_fingerprint();
  if (fp != want) {
    set_error(error, "fingerprint \"" + fp + "\" does not match this host \"" +
                         want + "\"");
    return TuneCacheStatus::kFingerprintMismatch;
  }

  TuneCacheEntry entry;
  bool saw_end = false;
  // Which of the required keys have been seen (order-independent).
  bool seen[6] = {false, false, false, false, false, false};
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line == "end") {
      saw_end = true;
      break;
    }
    std::istringstream ls(line);
    std::string key, value, extra;
    if (!(ls >> key >> value) || (ls >> extra)) {
      set_error(error, "malformed line \"" + line + "\"");
      return TuneCacheStatus::kCorrupt;
    }
    const auto as_int = [&](int lo, int hi, bool* ok) {
      char* end = nullptr;
      const long v = std::strtol(value.c_str(), &end, 10);
      *ok = end != nullptr && *end == '\0' && v >= lo && v <= hi;
      return static_cast<int>(v);
    };
    bool ok = true;
    if (key == "min_tile") {
      entry.tiles.min_tile = as_int(1, 4096, &ok);
      seen[0] = true;
    } else if (key == "max_tile") {
      entry.tiles.max_tile = as_int(1, 4096, &ok);
      seen[1] = true;
    } else if (key == "preferred_tile") {
      entry.tiles.preferred_tile = as_int(1, 4096, &ok);
      seen[2] = true;
    } else if (key == "direct_threshold") {
      entry.tiles.direct_threshold = as_int(0, 1 << 20, &ok);
      seen[3] = true;
    } else if (key == "packfused_max_depth") {
      entry.tiles.packfused_max_depth = as_int(0, 64, &ok);
      seen[4] = true;
    } else if (key == "kernel") {
      try {
        entry.kernel =
            blas::kernels::parse_kernel_name(value.c_str(),
                                             &entry.avx2_variant);
      } catch (const std::invalid_argument&) {
        ok = false;
      }
      seen[5] = true;
    } else {
      set_error(error, "unknown key \"" + key + "\"");
      return TuneCacheStatus::kCorrupt;
    }
    if (!ok) {
      set_error(error, "bad value for " + key + ": \"" + value + "\"");
      return TuneCacheStatus::kCorrupt;
    }
  }
  for (bool s : seen) {
    if (!s) {
      set_error(error, "truncated file (missing keys)");
      return TuneCacheStatus::kCorrupt;
    }
  }
  if (!saw_end) {
    set_error(error, "truncated file (missing end marker)");
    return TuneCacheStatus::kCorrupt;
  }
  if (entry.tiles.min_tile > entry.tiles.max_tile ||
      entry.tiles.preferred_tile < entry.tiles.min_tile ||
      entry.tiles.preferred_tile > entry.tiles.max_tile) {
    set_error(error, "inconsistent tile range");
    return TuneCacheStatus::kCorrupt;
  }
  *out = entry;
  set_error(error, "");
  return TuneCacheStatus::kOk;
}

bool save_tune_cache(const std::string& path, const TuneCacheEntry& entry,
                     std::string* error) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out.is_open()) {
      set_error(error, "cannot write " + tmp);
      return false;
    }
    out << kTuneCacheMagic << '\n';
    out << "fingerprint " << tune_cache_fingerprint() << '\n';
    out << "min_tile " << entry.tiles.min_tile << '\n';
    out << "max_tile " << entry.tiles.max_tile << '\n';
    out << "preferred_tile " << entry.tiles.preferred_tile << '\n';
    out << "direct_threshold " << entry.tiles.direct_threshold << '\n';
    out << "packfused_max_depth " << entry.tiles.packfused_max_depth << '\n';
    out << "kernel " << kernel_value(entry.kernel, entry.avx2_variant) << '\n';
    out << "end\n";
    out.flush();
    if (!out.good()) {
      set_error(error, "write to " + tmp + " failed");
      return false;
    }
  }
  // Rename-over so a concurrent reader sees either the old complete file or
  // the new complete file, never a torn one.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    set_error(error, "rename " + tmp + " -> " + path + " failed");
    std::remove(tmp.c_str());
    return false;
  }
  set_error(error, "");
  return true;
}

const char* tune_cache_env() noexcept {
  const char* v = std::getenv("STRASSEN_TUNE_CACHE");
  return (v != nullptr && v[0] != '\0') ? v : nullptr;
}

// ---- autotune_cached --------------------------------------------------------

const char* tune_source_name(TuneSource s) noexcept {
  switch (s) {
    case TuneSource::kFreshSurvey: return "fresh-survey";
    case TuneSource::kProcessMemo: return "process-memo";
    case TuneSource::kDiskCache: return "disk-cache";
    case TuneSource::kRejectedCache: return "rejected-cache";
  }
  return "unknown";
}

namespace {

struct AutotuneMemo {
  bool valid = false;
  TuneCacheEntry entry;
};

std::mutex g_memo_mutex;
AutotuneMemo g_memo;

AutotuneResult result_from_entry(const TuneCacheEntry& entry,
                                 const AutotuneOptions& opt) {
  AutotuneResult r;
  r.tiles = entry.tiles;
  r.best_kernel = entry.kernel;
  r.best_avx2_variant = entry.avx2_variant;
  if (opt.apply_best_kernel) {
    blas::kernels::set_active_kernel(entry.kernel);
    blas::kernels::set_avx2_variant(entry.avx2_variant);
  }
  return r;
}

}  // namespace

CachedAutotune autotune_cached(const AutotuneOptions& opt, const char* path) {
  {
    std::lock_guard<std::mutex> lock(g_memo_mutex);
    if (g_memo.valid) {
      CachedAutotune out;
      out.result = result_from_entry(g_memo.entry, opt);
      out.source = TuneSource::kProcessMemo;
      return out;
    }
  }
  bool rejected = false;
  if (path != nullptr && path[0] != '\0') {
    TuneCacheEntry entry;
    std::string err;
    const TuneCacheStatus st = load_tune_cache(path, &entry, &err);
    if (st == TuneCacheStatus::kOk) {
      std::lock_guard<std::mutex> lock(g_memo_mutex);
      g_memo.valid = true;
      g_memo.entry = entry;
      CachedAutotune out;
      out.result = result_from_entry(entry, opt);
      out.source = TuneSource::kDiskCache;
      return out;
    }
    if (st != TuneCacheStatus::kMissing) {
      rejected = true;
      std::fprintf(stderr,
                   "strassen: STRASSEN_TUNE_CACHE %s ignored (%s): %s; "
                   "running a fresh survey\n",
                   path, tune_cache_status_name(st), err.c_str());
    }
  }
  CachedAutotune out;
  out.result = autotune(opt);
  out.source = rejected ? TuneSource::kRejectedCache : TuneSource::kFreshSurvey;
  TuneCacheEntry entry;
  entry.tiles = out.result.tiles;
  entry.kernel = out.result.best_kernel;
  entry.avx2_variant = out.result.best_avx2_variant;
  if (path != nullptr && path[0] != '\0') {
    std::string err;
    if (!save_tune_cache(path, entry, &err))
      std::fprintf(stderr, "strassen: could not persist tune cache: %s\n",
                   err.c_str());
  }
  std::lock_guard<std::mutex> lock(g_memo_mutex);
  g_memo.valid = true;
  g_memo.entry = entry;
  return out;
}

CachedAutotune autotune_cached(const AutotuneOptions& opt) {
  return autotune_cached(opt, tune_cache_env());
}

void reset_autotune_memo() noexcept {
  std::lock_guard<std::mutex> lock(g_memo_mutex);
  g_memo.valid = false;
}

}  // namespace strassen::tune
