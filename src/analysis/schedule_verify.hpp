// analysis/schedule_verify.hpp -- symbolic verification of schedule tables.
//
// A schedule (analysis/schedule.hpp) is a straight-line program over formal
// quadrant operands.  The verifier executes it SYMBOLICALLY: A- and B-shaped
// slots carry integer linear combinations of the four input quadrants of
// their side, C-shaped slots carry bilinear forms (a 4x4 integer coefficient
// matrix over A-quadrant x B-quadrant products).  Working over exact integer
// coefficients, the checks are proofs, not spot tests:
//
//   1. well-formedness    every step's operands exist and have the shapes
//                         its kind requires;
//   2. write safety       no step writes an input quadrant; products never
//                         alias their destination with a source;
//   3. defined reads      no step reads a slot before it was written
//                         (use-after-overwrite reorderings surface here or
//                         as 4/5);
//   4. no dead stores     every value written is read by a later step
//                         before being overwritten, or is the final value
//                         of a C quadrant -- a clobbered live value shows
//                         up as the clobbered store becoming dead;
//   5. product identity   after the last step, each C quadrant's bilinear
//                         form equals its Sum_k A_ik.B_kj target;
//   6. temporary peak     the maximum number of simultaneously live
//                         temporaries (backward liveness) equals the
//                         schedule's declared bound.
//
// The core (verify_core) is constexpr and reports the FIRST violation with
// its step index; schedule_verify.cpp static_asserts it over the shipped
// tables, so a broken table fails the library build.  The runtime layer
// (verify_schedule) re-runs the same core pieces and formats step-precise
// diagnostics, collecting every violation; check_fused_products proves a
// fused table's products are algebraically identical to products of its
// materialized reference.
#pragma once

#include <string>
#include <vector>

#include "analysis/schedule.hpp"

namespace strassen::analysis {

// ---- symbolic domain ------------------------------------------------------

// Linear combination over one side's quadrants (index 0..3 = X11,X12,X21,X22
// for X in {A, B}).
struct Lin {
  int c[4] = {0, 0, 0, 0};
  constexpr bool operator==(const Lin&) const = default;
};

// Bilinear form: coefficient of A-quadrant i times B-quadrant j.
struct Bilinear {
  int c[4][4] = {};
  constexpr bool operator==(const Bilinear&) const = default;
};

// One slot's symbolic value; `defined` gates every read.  C-shaped slots
// additionally carry `cin`: a linear combination over the INITIAL values of
// the four C quadrants (index 0..3 = C11,C12,C21,C22), which is how the
// verifier proves accumulating schedules -- a final C quadrant must carry
// exactly its own initial value (unit cin) in accumulating tables and none
// at all in overwriting ones.
struct SymValue {
  bool defined = false;
  Lin lin{};       // meaningful for A-/B-shaped slots
  Bilinear bil{};  // meaningful for C-shaped slots
  Lin cin{};       // initial-C contribution; meaningful for C-shaped slots
};

struct SymState {
  SymValue slot[kOperandCount]{};
};

// The multiplication target: C_ij = Sum_k A_ik . B_kj on the 2x2 quadrant
// block structure (quadrant index: 0=11, 1=12, 2=21, 3=22).
constexpr Bilinear c_target(Operand c) {
  Bilinear t{};
  switch (c) {
    case Operand::kC11: t.c[0][0] = 1; t.c[1][2] = 1; break;  // A11B11+A12B21
    case Operand::kC12: t.c[0][1] = 1; t.c[1][3] = 1; break;  // A11B12+A12B22
    case Operand::kC21: t.c[2][0] = 1; t.c[3][2] = 1; break;  // A21B11+A22B21
    case Operand::kC22: t.c[2][1] = 1; t.c[3][3] = 1; break;  // A21B12+A22B22
    default: break;
  }
  return t;
}

// ---- verification core ----------------------------------------------------

enum class Violation : std::uint8_t {
  kNone = 0,
  kEmptySchedule,      // no steps
  kBadOperand,         // kNone where an operand is required
  kShapeMismatch,      // operand shape does not fit the step kind's role
  kWriteToInput,       // destination is an A/B quadrant
  kProductAliasing,    // a product's destination is also one of its sources
  kReadUndefined,      // source (or in-place destination) never written
  kUndeclaredTemp,     // step uses a temporary absent from Schedule::temps
  kFusedInPlainTable,  // fused step in a table not marked uses_fused_kernels
  kDeadStore,          // written value never read and not a final C quadrant
  kProductIdentity,    // final C quadrant differs from its target
  kOutputUndefined,    // a C quadrant is never written
  kTempPeakMismatch,   // live-temporary peak != declared_temp_peak
  kBadTempBuffer,      // temp_buffer id out of range [0, temp_count)
  kSharedTempOverlap,  // temps sharing one arena buffer simultaneously live
  kAccumClobber,       // accumulating table loses a C quadrant's initial
                       // value (or a plain table leaks one in)
};

constexpr const char* violation_name(Violation v) {
  switch (v) {
    case Violation::kNone: return "none";
    case Violation::kEmptySchedule: return "empty-schedule";
    case Violation::kBadOperand: return "bad-operand";
    case Violation::kShapeMismatch: return "shape-mismatch";
    case Violation::kWriteToInput: return "write-to-input";
    case Violation::kProductAliasing: return "product-aliasing";
    case Violation::kReadUndefined: return "read-undefined";
    case Violation::kUndeclaredTemp: return "undeclared-temp";
    case Violation::kFusedInPlainTable: return "fused-in-plain-table";
    case Violation::kDeadStore: return "dead-store";
    case Violation::kProductIdentity: return "product-identity";
    case Violation::kOutputUndefined: return "output-undefined";
    case Violation::kTempPeakMismatch: return "temp-peak-mismatch";
    case Violation::kBadTempBuffer: return "bad-temp-buffer";
    case Violation::kSharedTempOverlap: return "shared-temp-overlap";
    case Violation::kAccumClobber: return "accum-clobber";
  }
  return "unknown";
}

// First violation (step = offending step index, or -1 for whole-schedule
// violations; operand = the slot involved), plus the schedule's proven
// statistics when it verifies.
struct CoreResult {
  Violation violation = Violation::kNone;
  int step = -1;
  Operand operand = Operand::kNone;
  int temp_peak = 0;    // live-temporary peak (valid when no violation)
  int temp_peak_step = -1;  // first step whose entry point carries the peak
  int products = 0;     // product steps (7 for one Winograd level)
  int fused_products = 0;
  int linear_ops = 0;   // element-wise steps (15 materialized / 11 fused)
};

namespace detail {

// Sources a step READS, in a fixed scan order; kNone-padded.  In-place
// destinations read their previous value and are included.
struct ReadSet {
  Operand ops[4] = {Operand::kNone, Operand::kNone, Operand::kNone,
                    Operand::kNone};
  int count = 0;
};

constexpr ReadSet step_reads(const Step& s) {
  ReadSet r{};
  auto push = [&r](Operand op) {
    if (op != Operand::kNone) r.ops[r.count++] = op;
  };
  switch (s.kind) {
    case StepKind::kAdd:
    case StepKind::kSub:
      push(s.a0);
      push(s.a1);
      break;
    case StepKind::kAddInplace:
    case StepKind::kSubInplace:
      push(s.dst);  // reads its previous value
      push(s.a0);
      break;
    case StepKind::kMul:
      push(s.a0);
      push(s.b0);
      break;
    case StepKind::kMulFusedA:
      push(s.a0);
      push(s.a1);
      push(s.b0);
      break;
    case StepKind::kMulFusedB:
      push(s.a0);
      push(s.b0);
      push(s.b1);
      break;
    case StepKind::kMulFusedAB:
      push(s.a0);
      push(s.a1);
      push(s.b0);
      push(s.b1);
      break;
  }
  return r;
}

// Structural check of one step: operand presence and shapes.  Returns the
// violation (kNone when well-formed) and the offending operand.
constexpr Violation step_shape_check(const Step& s, Operand* bad) {
  auto fail = [bad](Violation v, Operand op) {
    *bad = op;
    return v;
  };
  if (s.dst == Operand::kNone) return fail(Violation::kBadOperand, s.dst);
  const Shape ds = shape_of(s.dst);
  switch (s.kind) {
    case StepKind::kAdd:
    case StepKind::kSub:
      if (s.a0 == Operand::kNone) return fail(Violation::kBadOperand, s.a0);
      if (s.a1 == Operand::kNone) return fail(Violation::kBadOperand, s.a1);
      if (shape_of(s.a0) != ds) return fail(Violation::kShapeMismatch, s.a0);
      if (shape_of(s.a1) != ds) return fail(Violation::kShapeMismatch, s.a1);
      return Violation::kNone;
    case StepKind::kAddInplace:
    case StepKind::kSubInplace:
      if (s.a0 == Operand::kNone) return fail(Violation::kBadOperand, s.a0);
      if (shape_of(s.a0) != ds) return fail(Violation::kShapeMismatch, s.a0);
      return Violation::kNone;
    case StepKind::kMul:
    case StepKind::kMulFusedA:
    case StepKind::kMulFusedB:
    case StepKind::kMulFusedAB: {
      if (ds != Shape::kC) return fail(Violation::kShapeMismatch, s.dst);
      if (s.a0 == Operand::kNone) return fail(Violation::kBadOperand, s.a0);
      if (s.b0 == Operand::kNone) return fail(Violation::kBadOperand, s.b0);
      if (shape_of(s.a0) != Shape::kA)
        return fail(Violation::kShapeMismatch, s.a0);
      if (shape_of(s.b0) != Shape::kB)
        return fail(Violation::kShapeMismatch, s.b0);
      const bool wants_a1 =
          s.kind == StepKind::kMulFusedA || s.kind == StepKind::kMulFusedAB;
      const bool wants_b1 =
          s.kind == StepKind::kMulFusedB || s.kind == StepKind::kMulFusedAB;
      if (wants_a1) {
        if (s.a1 == Operand::kNone) return fail(Violation::kBadOperand, s.a1);
        if (shape_of(s.a1) != Shape::kA)
          return fail(Violation::kShapeMismatch, s.a1);
      }
      if (wants_b1) {
        if (s.b1 == Operand::kNone) return fail(Violation::kBadOperand, s.b1);
        if (shape_of(s.b1) != Shape::kB)
          return fail(Violation::kShapeMismatch, s.b1);
      }
      return Violation::kNone;
    }
  }
  return Violation::kBadOperand;
}

// Executes one WELL-FORMED step on the symbolic state.  The caller has
// already checked shapes and defined-ness; aliasing of element-wise steps is
// handled naturally because sources are evaluated before the destination is
// assigned.
constexpr void sym_apply(const Step& s, SymState& st) {
  const int d = static_cast<int>(s.dst);
  auto lin_of = [&st](Operand op) { return st.slot[static_cast<int>(op)].lin; };
  auto bil_of = [&st](Operand op) { return st.slot[static_cast<int>(op)].bil; };
  auto cin_of = [&st](Operand op) { return st.slot[static_cast<int>(op)].cin; };
  auto fused_lin = [&lin_of](Operand x0, Operand x1, Sign sign) {
    Lin l = lin_of(x0);
    if (x1 != Operand::kNone) {
      const Lin l1 = lin_of(x1);
      for (int i = 0; i < 4; ++i)
        l.c[i] += static_cast<int>(sign) * l1.c[i];
    }
    return l;
  };
  const Shape ds = shape_of(s.dst);
  switch (s.kind) {
    case StepKind::kAdd:
    case StepKind::kSub: {
      const int sign = s.kind == StepKind::kAdd ? 1 : -1;
      if (ds == Shape::kC) {
        const Bilinear x = bil_of(s.a0), y = bil_of(s.a1);
        Bilinear out{};
        for (int i = 0; i < 4; ++i)
          for (int j = 0; j < 4; ++j) out.c[i][j] = x.c[i][j] + sign * y.c[i][j];
        st.slot[d].bil = out;
        const Lin cx = cin_of(s.a0), cy = cin_of(s.a1);
        Lin cout{};
        for (int i = 0; i < 4; ++i) cout.c[i] = cx.c[i] + sign * cy.c[i];
        st.slot[d].cin = cout;
      } else {
        const Lin x = lin_of(s.a0), y = lin_of(s.a1);
        Lin out{};
        for (int i = 0; i < 4; ++i) out.c[i] = x.c[i] + sign * y.c[i];
        st.slot[d].lin = out;
      }
      break;
    }
    case StepKind::kAddInplace:
    case StepKind::kSubInplace: {
      const int sign = s.kind == StepKind::kAddInplace ? 1 : -1;
      if (ds == Shape::kC) {
        const Bilinear x = bil_of(s.a0);
        for (int i = 0; i < 4; ++i)
          for (int j = 0; j < 4; ++j) st.slot[d].bil.c[i][j] += sign * x.c[i][j];
        const Lin cx = cin_of(s.a0);
        for (int i = 0; i < 4; ++i) st.slot[d].cin.c[i] += sign * cx.c[i];
      } else {
        const Lin x = lin_of(s.a0);
        for (int i = 0; i < 4; ++i) st.slot[d].lin.c[i] += sign * x.c[i];
      }
      break;
    }
    case StepKind::kMul:
    case StepKind::kMulFusedA:
    case StepKind::kMulFusedB:
    case StepKind::kMulFusedAB: {
      const Lin a = fused_lin(
          s.a0,
          (s.kind == StepKind::kMulFusedA || s.kind == StepKind::kMulFusedAB)
              ? s.a1
              : Operand::kNone,
          s.asign);
      const Lin b = fused_lin(
          s.b0,
          (s.kind == StepKind::kMulFusedB || s.kind == StepKind::kMulFusedAB)
              ? s.b1
              : Operand::kNone,
          s.bsign);
      Bilinear out{};
      for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j) out.c[i][j] = a.c[i] * b.c[j];
      st.slot[d].bil = out;
      st.slot[d].cin = Lin{};  // a product overwrites any initial-C content
      break;
    }
  }
  st.slot[d].defined = true;
}

// Initial symbolic state: inputs hold their own unit linear combination.
// For accumulating tables the C quadrants are inputs too: each starts
// defined, holding its own unit initial-C term and an empty bilinear form.
constexpr SymState initial_state(bool accumulates = false) {
  SymState st{};
  for (int i = 0; i < 4; ++i) {
    st.slot[static_cast<int>(Operand::kA11) + i].defined = true;
    st.slot[static_cast<int>(Operand::kA11) + i].lin.c[i] = 1;
    st.slot[static_cast<int>(Operand::kB11) + i].defined = true;
    st.slot[static_cast<int>(Operand::kB11) + i].lin.c[i] = 1;
    if (accumulates) {
      st.slot[static_cast<int>(Operand::kC11) + i].defined = true;
      st.slot[static_cast<int>(Operand::kC11) + i].cin.c[i] = 1;
    }
  }
  return st;
}

constexpr bool temp_declared(const Schedule& s, Operand op) {
  for (int i = 0; i < s.temp_count; ++i)
    if (s.temps[i] == op) return true;
  return false;
}

// Forward pass: structural checks + symbolic execution.  On violation,
// fills `r` (step/operand) and returns false; otherwise `st` holds the final
// symbolic state.
constexpr bool sym_execute(const Schedule& sched, SymState& st, CoreResult& r) {
  st = initial_state(sched.accumulates_c);
  for (int i = 0; i < sched.step_count; ++i) {
    const Step& s = sched.steps[i];
    r.step = i;
    Operand bad = Operand::kNone;
    const Violation shape_v = step_shape_check(s, &bad);
    if (shape_v != Violation::kNone) {
      r.violation = shape_v;
      r.operand = bad;
      return false;
    }
    // Tables marked overwrites_inputs may write A/B quadrant SLOTS: shape
    // rules already confine such writes to element-wise steps (a product's
    // destination must be C-shaped), so every one is an exact-alias
    // vadd/vsub on an operand copy the caller staged.  Misreads of a
    // clobbered original surface as a product-identity failure.
    if (is_input(s.dst) && !sched.overwrites_inputs) {
      r.violation = Violation::kWriteToInput;
      r.operand = s.dst;
      return false;
    }
    if (is_fused(s.kind) && !sched.uses_fused_kernels) {
      r.violation = Violation::kFusedInPlainTable;
      r.operand = s.dst;
      return false;
    }
    const ReadSet reads = step_reads(s);
    if (is_product(s.kind)) {
      for (int k = 0; k < reads.count; ++k) {
        if (reads.ops[k] == s.dst) {
          r.violation = Violation::kProductAliasing;
          r.operand = s.dst;
          return false;
        }
      }
    }
    for (int k = 0; k < reads.count; ++k) {
      const Operand op = reads.ops[k];
      if (is_temp(op) && !temp_declared(sched, op)) {
        r.violation = Violation::kUndeclaredTemp;
        r.operand = op;
        return false;
      }
      if (!st.slot[static_cast<int>(op)].defined) {
        r.violation = Violation::kReadUndefined;
        r.operand = op;
        return false;
      }
    }
    if (is_temp(s.dst) && !temp_declared(sched, s.dst)) {
      r.violation = Violation::kUndeclaredTemp;
      r.operand = s.dst;
      return false;
    }
    sym_apply(s, st);
  }
  r.step = -1;
  return true;
}

// Dead-store scan: the value written by step i into slot s must be read by
// some later step before the next write to s, or be the final value of a C
// quadrant.  Returns the first offending step (operand = its destination),
// or -1.
constexpr int first_dead_store(const Schedule& sched, Operand* op) {
  for (int i = 0; i < sched.step_count; ++i) {
    const Operand dst = sched.steps[i].dst;
    bool read_later = false;
    bool overwritten = false;
    for (int j = i + 1; j < sched.step_count && !read_later; ++j) {
      const ReadSet reads = step_reads(sched.steps[j]);
      for (int k = 0; k < reads.count; ++k)
        if (reads.ops[k] == dst) read_later = true;
      if (!read_later && sched.steps[j].dst == dst) {
        overwritten = true;
        break;
      }
    }
    if (read_later) continue;
    if (!overwritten && is_c_quadrant(dst)) continue;  // final output value
    *op = dst;
    return i;
  }
  return -1;
}

// Backward liveness over the declared temporaries: peak number of
// simultaneously live temporaries across all program points.  A temporary is
// live at a point when some later step reads it before it is overwritten.
// `at_step` (optional) receives the FIRST step in program order whose entry
// point carries the peak -- the step a diagnostic should name.
constexpr int live_temp_peak(const Schedule& sched, int* at_step = nullptr) {
  bool live[kOperandCount] = {};
  int peak = 0;
  int first = -1;
  for (int i = sched.step_count - 1; i >= 0; --i) {
    const Step& s = sched.steps[i];
    // Program point is BEFORE step i: kill the definition, then add reads.
    // In-place steps both read and write dst; the read below re-marks it.
    live[static_cast<int>(s.dst)] = false;
    const ReadSet reads = step_reads(s);
    for (int k = 0; k < reads.count; ++k)
      live[static_cast<int>(reads.ops[k])] = true;
    int count = 0;
    for (int o = 0; o < kOperandCount; ++o)
      if (live[o] && is_temp(static_cast<Operand>(o))) ++count;
    if (count > peak) peak = count;
    if (count == peak && peak > 0) first = i;  // loop runs backward: the
                                               // last update is the earliest
  }
  if (at_step != nullptr) *at_step = first;
  return peak;
}

// True when `op` is live at the program point BEFORE step `point`: some step
// j >= point reads it before any step overwrites it.  (Reads of step j are
// checked before its write, so an in-place or exact-alias definition counts
// as a read of the previous value.)
constexpr bool live_at(const Schedule& sched, Operand op, int point) {
  for (int j = point; j < sched.step_count; ++j) {
    const ReadSet reads = step_reads(sched.steps[j]);
    for (int k = 0; k < reads.count; ++k)
      if (reads.ops[k] == op) return true;
    if (sched.steps[j].dst == op) return false;
  }
  return false;
}

// Shared-buffer safety.  Validates the temp_buffer mapping (ids in
// [0, temp_count)) and proves that no two temporaries mapped onto one arena
// buffer are ever simultaneously live.  Returns kNone, or the violation with
// the first offending step (`*step`) and one involved temp (`*op`).
constexpr Violation check_temp_buffers(const Schedule& sched, int* step,
                                       Operand* op) {
  if (sched.temp_buffer == nullptr) return Violation::kNone;
  for (int i = 0; i < sched.temp_count; ++i) {
    if (sched.temp_buffer[i] < 0 || sched.temp_buffer[i] >= sched.temp_count) {
      *step = -1;
      *op = sched.temps[i];
      return Violation::kBadTempBuffer;
    }
  }
  for (int i = 0; i < sched.temp_count; ++i) {
    for (int j = i + 1; j < sched.temp_count; ++j) {
      if (sched.temp_buffer[i] != sched.temp_buffer[j]) continue;
      for (int p = 0; p < sched.step_count; ++p) {
        if (live_at(sched, sched.temps[i], p) &&
            live_at(sched, sched.temps[j], p)) {
          *step = p;
          *op = sched.temps[j];
          return Violation::kSharedTempOverlap;
        }
      }
    }
  }
  return Violation::kNone;
}

}  // namespace detail

// Verifies `sched` end to end; stops at the FIRST violation.  constexpr so
// shipped tables are provable at compile time (see schedule_verify.cpp).
constexpr CoreResult verify_core(const Schedule& sched) {
  CoreResult r{};
  // No `steps == nullptr` test here: gcc with -fsanitize=undefined refuses to
  // constant-fold global-array-address vs nullptr comparisons, which would
  // break the static_asserts over the shipped tables.  The runtime layer
  // (verify_schedule) guards null steps before calling in.
  if (sched.step_count <= 0) {
    r.violation = Violation::kEmptySchedule;
    return r;
  }
  SymState st{};
  if (!detail::sym_execute(sched, st, r)) return r;
  {
    Operand dead = Operand::kNone;
    const int i = detail::first_dead_store(sched, &dead);
    if (i >= 0) {
      r.violation = Violation::kDeadStore;
      r.step = i;
      r.operand = dead;
      return r;
    }
  }
  for (Operand c : {Operand::kC11, Operand::kC12, Operand::kC21,
                    Operand::kC22}) {
    const SymValue& v = st.slot[static_cast<int>(c)];
    if (!v.defined) {
      r.violation = Violation::kOutputUndefined;
      r.operand = c;
      return r;
    }
    if (!(v.bil == c_target(c))) {
      r.violation = Violation::kProductIdentity;
      r.operand = c;
      return r;
    }
    // Initial-C term: an accumulating table must deliver C += A.B -- each
    // quadrant carries exactly its own initial value -- and an overwriting
    // table must deliver none (trivially zero when C starts undefined, but
    // checked so a mislabelled table cannot pass).
    Lin want{};
    if (sched.accumulates_c)
      want.c[static_cast<int>(c) - static_cast<int>(Operand::kC11)] = 1;
    if (!(v.cin == want)) {
      r.violation = Violation::kAccumClobber;
      r.operand = c;
      return r;
    }
  }
  r.temp_peak = detail::live_temp_peak(sched, &r.temp_peak_step);
  if (r.temp_peak != sched.declared_temp_peak) {
    r.violation = Violation::kTempPeakMismatch;
    r.step = r.temp_peak_step;
    r.operand = Operand::kNone;
    return r;
  }
  {
    int bstep = -1;
    Operand bop = Operand::kNone;
    const Violation bv = detail::check_temp_buffers(sched, &bstep, &bop);
    if (bv != Violation::kNone) {
      r.violation = bv;
      r.step = bstep;
      r.operand = bop;
      return r;
    }
  }
  for (int i = 0; i < sched.step_count; ++i) {
    if (is_product(sched.steps[i].kind)) {
      ++r.products;
      if (is_fused(sched.steps[i].kind)) ++r.fused_products;
    } else {
      ++r.linear_ops;
    }
  }
  return r;
}

// ---- runtime layer (diagnostics; schedule_verify.cpp) ---------------------

struct VerifyResult {
  bool ok = false;
  int temp_peak = 0;
  int products = 0;
  int fused_products = 0;
  int linear_ops = 0;
  std::vector<std::string> errors;  // step-precise diagnostics, all collected
};

// Full verification with human-readable, step-precise diagnostics.  Unlike
// verify_core it keeps going after a forward-pass violation where possible
// (dead stores, identity, peak are each reported independently).
VerifyResult verify_schedule(const Schedule& sched);

// Proves every product of `fused` is algebraically identical to a product
// computed by `reference` (same bilinear form): the fused entries are exact
// re-associations, not approximations.  Returns diagnostics (empty = proven).
std::vector<std::string> check_fused_products(const Schedule& fused,
                                              const Schedule& reference);

// Renders a C-shaped slot's bilinear form, e.g. "+A11.B11 +A12.B21".
std::string bilinear_to_string(const Bilinear& b);

}  // namespace strassen::analysis
