// fig7_conversion -- reproduces Figure 7: Morton conversion time as a
// percentage of MODGEMM's total execution time.
//
// Expected shape: conversion costs up to ~15% at small sizes and falls
// toward ~5% as n grows (conversion is O(n^2) against an O(n^2.8) multiply).
#include <cstdio>

#include "common/ascii_plot.hpp"
#include "core/modgemm.hpp"
#include "support/bench_common.hpp"

using namespace strassen;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::banner("Figure 7",
                "Column-major <-> Morton conversion as %% of MODGEMM total "
                "execution time");

  Table table({"n", "convert_in(s)", "compute(s)", "convert_out(s)",
               "conversion%"});
  args.maybe_mirror(table, "fig7_conversion");
  bench::ReportLog log(args, "fig7_conversion");

  double lo = 100.0, hi = 0.0;
  std::vector<double> xs;
  PlotSeries pct_series{"conversion %", '#', {}};
  for (int n : bench::paper_sizes(args)) {
    bench::Problem p(n, n, n, static_cast<std::uint64_t>(n) * 3);
    const MeasureOptions opt = bench::protocol(args, n);
    // Accumulate the report over the protocol's invocations; the fractions
    // are ratios, so the repetition count cancels.
    core::ModgemmReport report;
    measure(
        [&] {
          core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, p.A.data(),
                        p.A.ld(), p.B.data(), p.B.ld(), 0.0, p.C.data(),
                        p.C.ld(), {}, &report);
        },
        opt);
    log.add("n=" + std::to_string(n), report);
    const double pct = 100.0 * report.conversion_fraction();
    lo = std::min(lo, pct);
    hi = std::max(hi, pct);
    xs.push_back(n);
    pct_series.y.push_back(pct);
    table.add_row({Table::num(static_cast<long long>(n)),
                   Table::num(report.convert_in_seconds, 4),
                   Table::num(report.compute_seconds, 4),
                   Table::num(report.convert_out_seconds, 4),
                   Table::num(pct, 1)});
  }
  table.print();
  std::printf("\nConversion share of total time vs n:\n%s",
              render_plot(xs, {pct_series}).c_str());
  std::printf(
      "\nConversion fraction over the sweep: %.1f%% .. %.1f%% (paper: ~5%% "
      "for large n up to ~15%% for small n).\n",
      lo, hi);
  return 0;
}
