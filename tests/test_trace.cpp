// Tests for the tracing memory model and full-run trace drivers (src/trace).
#include <gtest/gtest.h>

#include <vector>

#include "blas/level1.hpp"
#include "blas/kernels.hpp"
#include "common/rng.hpp"
#include "trace/memmodel.hpp"
#include "trace/presets.hpp"
#include "trace/traced_run.hpp"

namespace strassen::trace {
namespace {

TEST(TracingMem, CountsEveryLoadAndStore) {
  CacheHierarchy h = paper_fig9_cache();
  TracingMem mm(h);
  std::vector<double> a(100, 1.0), b(100, 2.0), d(100);
  blas::vadd(mm, 100, d.data(), a.data(), b.data());
  // Each element: two loads + one store.
  EXPECT_EQ(h.total_accesses(), 300u);
}

TEST(TracingMem, ValuesAreUnchangedByTracing) {
  CacheHierarchy h = paper_fig9_cache();
  TracingMem mm(h);
  RawMem raw;
  const int n = 24;
  std::vector<double> A(n * n), B(n * n), C1(n * n), C2(n * n);
  Rng rng(1);
  rng.fill_uniform(A);
  rng.fill_uniform(B);
  // Compare the same gemm_leaf_generic instantiation pair, raw vs traced:
  // the TracingMem load/store hooks must not perturb arithmetic.  (Calling
  // the dispatching blas::gemm_leaf here would compare against whatever
  // SIMD kernel is active, which legitimately accumulates in a different
  // order; kernel-vs-kernel value agreement is test_kernel_engine's job.)
  blas::gemm_leaf_generic(raw, n, n, n, A.data(), n, B.data(), n, C1.data(),
                          n, blas::LeafMode::Overwrite);
  blas::gemm_leaf_generic(mm, n, n, n, A.data(), n, B.data(), n, C2.data(), n,
                          blas::LeafMode::Overwrite);
  EXPECT_EQ(C1, C2);  // bit-identical: tracing must not perturb arithmetic
}

TEST(TracingMem, SequentialStreamHasBlockMissRatio) {
  // A cold sequential read of doubles through 32-byte blocks misses exactly
  // once per 4 elements.
  CacheHierarchy h("seq", {CacheConfig{"L1", 16 * 1024, 32, 1, 1.0}});
  TracingMem mm(h);
  std::vector<double> a(1024), d(1024);
  // vcopy: one load + one store per element, to distinct arrays.
  blas::vcopy(mm, 1024, d.data(), a.data());
  EXPECT_EQ(h.total_accesses(), 2048u);
  // 1024 doubles = 256 blocks per array; both arrays fit alternate... the
  // two arrays are distinct allocations, so 512 cold misses in total.
  EXPECT_NEAR(h.l1_miss_ratio(), 512.0 / 2048.0, 0.02);
}

TEST(TraceMultiply, AllImplementationsProduceSaneRatios) {
  for (Impl impl :
       {Impl::Modgemm, Impl::Dgefmm, Impl::Dgemmw, Impl::Conventional}) {
    const TraceResult r = trace_multiply(impl, 96, 96, 96, paper_fig9_cache());
    EXPECT_GT(r.total_accesses, 0u) << impl_name(impl);
    EXPECT_GT(r.l1_miss_ratio, 0.0) << impl_name(impl);
    EXPECT_LT(r.l1_miss_ratio, 0.5) << impl_name(impl);
    EXPECT_GT(r.estimated_cycles, 0.0) << impl_name(impl);
    ASSERT_EQ(r.levels.size(), 1u);
    EXPECT_EQ(r.levels[0].accesses, r.total_accesses);
  }
}

TEST(TraceMultiply, StrassenDoesFewerKernelOpsAtScale) {
  // At 256^3 with one+ recursion levels, MODGEMM's traced access count
  // should be below the conventional algorithm's (7/8 products per level,
  // plus addition and conversion overhead; net win at this size for loads).
  const TraceResult conv =
      trace_multiply(Impl::Conventional, 256, 256, 256, paper_fig9_cache());
  const TraceResult mod =
      trace_multiply(Impl::Modgemm, 256, 256, 256, paper_fig9_cache());
  EXPECT_GT(conv.total_accesses, 0u);
  EXPECT_GT(mod.total_accesses, 0u);
  // Not asserting a strict inequality on accesses (the adds/conversions can
  // offset the saved products at this size); but both must be within 2x.
  EXPECT_LT(static_cast<double>(mod.total_accesses),
            2.0 * static_cast<double>(conv.total_accesses));
}

TEST(TraceMultiply, DeterministicForFixedSeed) {
  const TraceResult a =
      trace_multiply(Impl::Dgefmm, 100, 100, 100, paper_fig9_cache(), 42);
  const TraceResult b =
      trace_multiply(Impl::Dgefmm, 100, 100, 100, paper_fig9_cache(), 42);
  EXPECT_EQ(a.total_accesses, b.total_accesses);
  // Miss counts depend on heap addresses, which vary run to run; only the
  // access count is exactly reproducible.  It must also be nonzero.
  EXPECT_GT(a.total_accesses, 0u);
}

TEST(TraceTileKernel, ContiguousTileBeatsPowerOfTwoStride) {
  // The Fig. 3 effect: a T=24 tile multiply whose three tiles fit a 16KB
  // direct-mapped cache together (3 x 4.6KB) is essentially conflict-free
  // when the tiles are contiguous, but self-interferes badly when the
  // operands are strided with a power-of-two base leading dimension.
  const TraceResult contig = trace_tile_kernel(24, 0, true, paper_fig9_cache());
  const TraceResult strided256 =
      trace_tile_kernel(24, 256, false, paper_fig9_cache());
  EXPECT_LT(contig.l1_miss_ratio, strided256.l1_miss_ratio);
  // And the conflict at LD=256 should be substantial, not marginal.
  EXPECT_GT(strided256.l1_miss_ratio, 2.0 * contig.l1_miss_ratio);
}

TEST(TraceTileKernel, PowerOfTwoStrideIsTheUnstablePoint) {
  // The same kernel at a nearby non-power-of-two leading dimension behaves
  // far better -- the instability the paper's Fig. 3 plots.
  const TraceResult at250 =
      trace_tile_kernel(24, 250, false, paper_fig9_cache());
  const TraceResult at256 =
      trace_tile_kernel(24, 256, false, paper_fig9_cache());
  EXPECT_GT(at256.l1_miss_ratio, at250.l1_miss_ratio);
}

TEST(TraceTileKernel, RequiresRoomForOffsetSubmatrices) {
  EXPECT_THROW(trace_tile_kernel(32, 64, false, paper_fig9_cache()),
               std::invalid_argument);
}

TEST(ImplName, AllNamesDistinct) {
  EXPECT_STREQ(impl_name(Impl::Modgemm), "MODGEMM");
  EXPECT_STREQ(impl_name(Impl::Dgefmm), "DGEFMM");
  EXPECT_STREQ(impl_name(Impl::Dgemmw), "DGEMMW");
  EXPECT_STREQ(impl_name(Impl::Conventional), "DGEMM");
}

}  // namespace
}  // namespace strassen::trace
