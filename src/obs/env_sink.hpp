// obs/env_sink.hpp -- STRASSEN_OBS: report emission without code changes.
//
//   STRASSEN_OBS=json         every production modgemm/pmodgemm call prints
//                             its GemmReport as one JSON line on stderr
//   STRASSEN_OBS=json:PATH    ... appended to PATH instead (JSONL)
//
// The variable is re-read on every call, so embedders (and tests) can flip
// it at runtime with setenv(); an unknown value disables emission and warns
// once.  Emission is serialized by an internal mutex -- concurrent calls
// interleave whole lines, never characters.  Only top-level calls emit:
// a serial call a parallel driver degraded into reports through its parent.
#pragma once

#include "obs/report.hpp"

namespace strassen::obs {

// True when STRASSEN_OBS currently requests JSON emission.
bool env_sink_enabled();

// Emits one JSON line for `r` to the configured destination (no-op when the
// sink is disabled).  Failures to open the file warn once and drop output --
// observability must never turn a computed product into an error.
void env_emit(const GemmReport& r);

}  // namespace strassen::obs
