// matrix.hpp -- column-major matrices and views (the BLAS-facing data model).
//
// Everything at the library interface is a column-major matrix with a leading
// dimension, exactly as in Level 3 BLAS: element (i,j) of a view V lives at
// V.data[i + j*V.ld].  Morton storage is internal to src/layout and src/core.
#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "common/aligned_buffer.hpp"
#include "common/check.hpp"

namespace strassen {

// Transposition selector, as in the dgemm TRANSA/TRANSB arguments.
enum class Op { NoTrans, Trans };

inline char op_char(Op op) { return op == Op::NoTrans ? 'N' : 'T'; }

// Dimensions of op(X) given the stored dimensions of X.
inline int op_rows(Op op, int rows, int cols) {
  return op == Op::NoTrans ? rows : cols;
}
inline int op_cols(Op op, int rows, int cols) {
  return op == Op::NoTrans ? cols : rows;
}

// Non-owning mutable view of a column-major matrix.
template <class T>
struct MatrixView {
  T* data = nullptr;
  int rows = 0;
  int cols = 0;
  int ld = 0;  // leading dimension (>= rows)

  T& at(int i, int j) const {
    STRASSEN_ASSERT(i >= 0 && i < rows && j >= 0 && j < cols);
    return data[static_cast<std::size_t>(j) * ld + i];
  }

  // Sub-view of `r` rows and `c` cols starting at (i0, j0); shares storage.
  MatrixView block(int i0, int j0, int r, int c) const {
    STRASSEN_ASSERT(i0 >= 0 && j0 >= 0 && i0 + r <= rows && j0 + c <= cols);
    return MatrixView{data + static_cast<std::size_t>(j0) * ld + i0, r, c, ld};
  }
};

// Non-owning read-only view.
template <class T>
struct ConstMatrixView {
  const T* data = nullptr;
  int rows = 0;
  int cols = 0;
  int ld = 0;

  ConstMatrixView() = default;
  ConstMatrixView(const T* d, int r, int c, int l)
      : data(d), rows(r), cols(c), ld(l) {}
  // Implicit widening from a mutable view.
  ConstMatrixView(const MatrixView<T>& v)
      : data(v.data), rows(v.rows), cols(v.cols), ld(v.ld) {}

  const T& at(int i, int j) const {
    STRASSEN_ASSERT(i >= 0 && i < rows && j >= 0 && j < cols);
    return data[static_cast<std::size_t>(j) * ld + i];
  }

  ConstMatrixView block(int i0, int j0, int r, int c) const {
    STRASSEN_ASSERT(i0 >= 0 && j0 >= 0 && i0 + r <= rows && j0 + c <= cols);
    return ConstMatrixView{data + static_cast<std::size_t>(j0) * ld + i0, r, c,
                           ld};
  }
};

// Owning column-major matrix backed by aligned storage.  The leading
// dimension can exceed `rows` to reproduce the paper's non-contiguous
// submatrix experiments (Fig. 3).
template <class T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols) : Matrix(rows, cols, rows) {}
  Matrix(int rows, int cols, int ld)
      : buffer_(static_cast<std::size_t>(ld) * cols * sizeof(T)),
        rows_(rows),
        cols_(cols),
        ld_(ld) {
    STRASSEN_REQUIRE(rows >= 0 && cols >= 0 && ld >= rows,
                     "bad matrix dimensions");
    buffer_.zero();
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int ld() const { return ld_; }
  T* data() { return buffer_.template as<T>(); }
  const T* data() const { return buffer_.template as<T>(); }
  std::size_t size() const { return static_cast<std::size_t>(ld_) * cols_; }

  T& at(int i, int j) {
    STRASSEN_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data()[static_cast<std::size_t>(j) * ld_ + i];
  }
  const T& at(int i, int j) const {
    STRASSEN_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data()[static_cast<std::size_t>(j) * ld_ + i];
  }

  MatrixView<T> view() { return {data(), rows_, cols_, ld_}; }
  ConstMatrixView<T> view() const { return {data(), rows_, cols_, ld_}; }
  MatrixView<T> block(int i0, int j0, int r, int c) {
    return view().block(i0, j0, r, c);
  }

  // The full backing store, including any ld > rows gap (used by fills).
  std::span<T> storage() { return {data(), size()}; }
  std::span<const T> storage() const { return {data(), size()}; }

 private:
  AlignedBuffer buffer_;
  int rows_ = 0;
  int cols_ = 0;
  int ld_ = 0;
};

// Largest absolute elementwise difference between two equally-sized views.
template <class T>
double max_abs_diff(ConstMatrixView<T> a, ConstMatrixView<T> b) {
  STRASSEN_REQUIRE(a.rows == b.rows && a.cols == b.cols,
                   "shape mismatch in max_abs_diff");
  double worst = 0.0;
  for (int j = 0; j < a.cols; ++j)
    for (int i = 0; i < a.rows; ++i) {
      const double d = static_cast<double>(a.at(i, j)) - b.at(i, j);
      if (d > worst) worst = d;
      if (-d > worst) worst = -d;
    }
  return worst;
}

// Largest absolute element of a view (for relative-error scaling).
template <class T>
double max_abs(ConstMatrixView<T> a) {
  double worst = 0.0;
  for (int j = 0; j < a.cols; ++j)
    for (int i = 0; i < a.rows; ++i) {
      const double d = static_cast<double>(a.at(i, j));
      if (d > worst) worst = d;
      if (-d > worst) worst = -d;
    }
  return worst;
}

// Copies src into dst elementwise (shapes must match; lds may differ).
template <class T>
void copy_matrix(ConstMatrixView<T> src, MatrixView<T> dst) {
  STRASSEN_REQUIRE(src.rows == dst.rows && src.cols == dst.cols,
                   "shape mismatch in copy_matrix");
  for (int j = 0; j < src.cols; ++j)
    for (int i = 0; i < src.rows; ++i) dst.at(i, j) = src.at(i, j);
}

// Debug helper: renders a small matrix as text.
std::string to_string(ConstMatrixView<double> m, int precision = 3);

}  // namespace strassen
