// Unit tests for contiguous vector kernels (src/blas/level1).
#include <gtest/gtest.h>

#include <limits>
#include <span>
#include <vector>

#include "blas/level1.hpp"
#include "common/rng.hpp"

namespace strassen::blas {
namespace {

class Level1Sizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Level1Sizes, AddComputesElementwiseSum) {
  const std::size_t n = GetParam();
  Rng rng(1);
  std::vector<double> a(n), b(n), d(n, -7.0);
  rng.fill_uniform(a);
  rng.fill_uniform(b);
  vadd(n, d.data(), a.data(), b.data());
  for (std::size_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(d[i], a[i] + b[i]);
}

TEST_P(Level1Sizes, SubComputesElementwiseDifference) {
  const std::size_t n = GetParam();
  Rng rng(2);
  std::vector<double> a(n), b(n), d(n);
  rng.fill_uniform(a);
  rng.fill_uniform(b);
  vsub(n, d.data(), a.data(), b.data());
  for (std::size_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(d[i], a[i] - b[i]);
}

TEST_P(Level1Sizes, CopyZeroScale) {
  const std::size_t n = GetParam();
  Rng rng(3);
  std::vector<double> a(n), d(n);
  rng.fill_uniform(a);
  vcopy(n, d.data(), a.data());
  EXPECT_EQ(d, a);
  vscale(n, d.data(), 2.0);
  for (std::size_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(d[i], 2.0 * a[i]);
  vzero(n, d.data());
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(d[i], 0.0);
}

TEST_P(Level1Sizes, AxpbyGeneralAndBetaZero) {
  const std::size_t n = GetParam();
  Rng rng(4);
  std::vector<double> a(n), d(n), d0(n);
  rng.fill_uniform(a);
  rng.fill_uniform(d);
  d0 = d;
  vaxpby(n, d.data(), 2.0, a.data(), 3.0);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_DOUBLE_EQ(d[i], 2.0 * a[i] + 3.0 * d0[i]);
  // beta == 0 must not read dst (fill with NaN to prove it).
  std::vector<double> nan_dst(n, std::numeric_limits<double>::quiet_NaN());
  vaxpby(n, nan_dst.data(), 1.5, a.data(), 0.0);
  for (std::size_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(nan_dst[i], 1.5 * a[i]);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Level1Sizes,
                         ::testing::Values(0, 1, 2, 7, 64, 100, 1023));

TEST(Level1Alias, InplaceVariantsMatchOutOfPlace) {
  RawMem mm;
  const std::size_t n = 100;
  Rng rng(5);
  std::vector<double> a(n), d(n), ref(n);
  rng.fill_uniform(a);
  rng.fill_uniform(d);
  ref = d;
  vadd_inplace(mm, n, d.data(), a.data());
  for (std::size_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(d[i], ref[i] + a[i]);
  ref = d;
  vsub_inplace(mm, n, d.data(), a.data());
  for (std::size_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(d[i], ref[i] - a[i]);
}

TEST(Level1Alias, DstMayAliasEitherOperand) {
  RawMem mm;
  const std::size_t n = 33;
  Rng rng(6);
  std::vector<double> a(n), b(n), ref(n);
  rng.fill_uniform(a);
  rng.fill_uniform(b);
  // dst == b:  b <- a - b  (the T2 = B22 - T1 pattern in the schedules).
  for (std::size_t i = 0; i < n; ++i) ref[i] = a[i] - b[i];
  vsub(mm, n, b.data(), a.data(), b.data());
  EXPECT_EQ(b, ref);
  // dst == a:  a <- a - b'.
  std::vector<double> b2(n);
  rng.fill_uniform(b2);
  for (std::size_t i = 0; i < n; ++i) ref[i] = b[i] - b2[i];
  std::vector<double> x = b;
  vsub(mm, n, x.data(), x.data(), b2.data());
  EXPECT_EQ(x, ref);
}

TEST(Level1Float, KernelsAreTypeGeneric) {
  RawMem mm;
  const std::size_t n = 17;
  Rng rng(7);
  std::vector<float> a(n), b(n), d(n);
  rng.fill_uniform(std::span<float>(a));
  rng.fill_uniform(std::span<float>(b));
  vadd(mm, n, d.data(), a.data(), b.data());
  for (std::size_t i = 0; i < n; ++i) EXPECT_FLOAT_EQ(d[i], a[i] + b[i]);
}

}  // namespace
}  // namespace strassen::blas
