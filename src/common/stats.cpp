#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace strassen {

Summary summarize(std::span<const double> samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  s.min = *std::min_element(samples.begin(), samples.end());
  s.max = *std::max_element(samples.begin(), samples.end());
  double sum = 0.0;
  for (double x : samples) sum += x;
  s.mean = sum / static_cast<double>(samples.size());
  double sq = 0.0;
  for (double x : samples) sq += (x - s.mean) * (x - s.mean);
  s.stddev = samples.size() > 1
                 ? std::sqrt(sq / static_cast<double>(samples.size() - 1))
                 : 0.0;
  return s;
}

std::uint64_t gemm_flops(std::int64_t m, std::int64_t n, std::int64_t k) {
  return static_cast<std::uint64_t>(2) * m * n * k;
}

std::uint64_t winograd_flops(std::int64_t padded, int depth) {
  if (depth == 0) return gemm_flops(padded, padded, padded);
  const std::int64_t half = padded / 2;
  // 7 recursive products + 15 additions over half x half quadrants.
  return 7 * winograd_flops(half, depth - 1) +
         static_cast<std::uint64_t>(15) * half * half;
}

double gflops(std::uint64_t flops, double seconds) {
  return seconds > 0.0 ? static_cast<double>(flops) / seconds * 1e-9 : 0.0;
}

}  // namespace strassen
