// fig8_noconversion -- reproduces Figure 8: MODGEMM's execution time with
// the Morton conversions ELIMINATED, normalized to DGEFMM, alongside the
// with-conversion ratio from Fig. 5 for contrast.  Two ways to eliminate
// the conversion are measured:
//
//   * Morton-native -- operands already in Morton order (the Morton-native
//     API of core/morton_matrix), conversion done once outside the timed
//     region: the Fig. 8 assumption that the application keeps its data in
//     Morton order;
//   * pack-fused   -- the public column-major API with the pack-fused
//     execution strategy pinned: the Winograd schedule runs straight from
//     the caller's storage, folding operand combinations into leaf packing,
//     so there is no conversion to eliminate.  This column shows Fig. 8's
//     headline is reachable WITHOUT asking callers to change their layout.
//
// Expected shape: removing the 5-15% conversion overhead shifts the MODGEMM
// curve down uniformly, so it beats DGEFMM at most sizes (nearly all, on the
// paper's Ultra), and becomes competitive with DGEMMW; the pack-fused column
// tracks the Morton-native column closely (within a few percent).
#include <algorithm>
#include <cstdio>

#include "core/morton_matrix.hpp"
#include "support/bench_common.hpp"

using namespace strassen;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::banner("Figure 8",
                "MODGEMM without conversion (Morton-native operands and the "
                "pack-fused strategy) vs DGEFMM; with-conversion ratio shown "
                "for contrast");

  Table table({"n", "DGEFMM(s)", "MODGEMM/DGEFMM", "MODGEMM(noconv)/DGEFMM",
               "MODGEMM(packfused)/DGEFMM", "DGEMMW/DGEFMM"});
  args.maybe_mirror(table, "fig8_noconversion");

  const bench::GemmFn modgemm = bench::modgemm_fn();
  const bench::GemmFn packfused = bench::modgemm_packfused_fn();
  const bench::GemmFn dgefmm = bench::dgefmm_fn();
  const bench::GemmFn dgemmw = bench::dgemmw_fn();

  int wins = 0, packfused_wins = 0, total = 0;
  double worst_gap = 0.0;
  for (int n : bench::paper_sizes(args)) {
    bench::Problem p(n, n, n, static_cast<std::uint64_t>(n) * 7);
    const MeasureOptions opt = bench::protocol(args, n);
    const double t_fmm = bench::time_gemm(dgefmm, p, opt);
    const double t_mod = bench::time_gemm(modgemm, p, opt);
    const double t_packed = bench::time_gemm(packfused, p, opt);
    const double t_w = bench::time_gemm(dgemmw, p, opt);

    // Morton-native: convert once outside the timed region (the Fig. 8
    // assumption: the application keeps its data in Morton order).
    const core::MortonProductPlan plan = core::plan_morton_product(n, n, n);
    core::MortonMatrix Am = core::MortonMatrix::from_colmajor(plan.a, p.A.view());
    core::MortonMatrix Bm = core::MortonMatrix::from_colmajor(plan.b, p.B.view());
    core::MortonMatrix Cm(plan.c);
    Arena arena(core::multiply_workspace_bytes(plan));
    const double t_native =
        measure([&] { core::multiply(Am, Bm, Cm, arena); }, opt);

    table.add_row({Table::num(static_cast<long long>(n)),
                   Table::num(t_fmm, 4), Table::num(t_mod / t_fmm, 3),
                   Table::num(t_native / t_fmm, 3),
                   Table::num(t_packed / t_fmm, 3),
                   Table::num(t_w / t_fmm, 3)});
    ++total;
    if (t_native < t_fmm) ++wins;
    if (t_packed < t_fmm) ++packfused_wins;
    worst_gap = std::max(worst_gap, t_packed / t_native - 1.0);
  }
  table.print();
  std::printf(
      "\nWithout conversion, MODGEMM beat DGEFMM at %d of %d sizes (paper: "
      "most sizes above 500 on the\nAlpha; nearly all sizes on the Ultra); "
      "the pack-fused strategy (public column-major API) beat\nDGEFMM at %d "
      "of %d sizes and stayed within %.1f%% of the Morton-native time at "
      "worst.\n",
      wins, total, packfused_wins, total, worst_gap * 100.0);
  return 0;
}
