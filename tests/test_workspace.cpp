// Unit tests for workspace sizing (src/core/workspace and the baselines').
#include <gtest/gtest.h>

#include "baselines/dgefmm.hpp"
#include "baselines/dgemmw.hpp"
#include "core/workspace.hpp"

namespace strassen {
namespace {

TEST(WinogradWorkspace, DepthZeroNeedsNothing) {
  EXPECT_EQ(core::winograd_workspace_bytes(32, 32, 32, 0, sizeof(double)), 0u);
}

TEST(WinogradWorkspace, OneLevelIsThreeQuadrants) {
  // Quadrants of a (4t x 4t) problem at depth 1... here depth 1 on t=8:
  // temps are (8x8) each, rounded to 64-byte chunks.
  const std::size_t bytes =
      core::winograd_workspace_bytes(8, 8, 8, 1, sizeof(double));
  EXPECT_EQ(bytes, 3 * 512u);
}

TEST(WinogradWorkspace, GeometricDecayAcrossLevels) {
  // Each extra level adds temporaries 4x larger at the top; total stays
  // below (mk + kn + mn) * (1/3 geometric bound) + rounding slack.
  const int t = 16, d = 4;
  const std::size_t bytes =
      core::winograd_workspace_bytes(t, t, t, d, sizeof(double));
  const double full = 3.0 * (t << d) * (t << d) * sizeof(double);
  EXPECT_LT(static_cast<double>(bytes), full / 3.0 + 64.0 * 3 * d);
  EXPECT_GT(bytes, 0u);
}

TEST(WinogradWorkspace, MonotoneInDepthAndTiles) {
  std::size_t prev = 0;
  for (int d = 1; d <= 5; ++d) {
    const std::size_t b = core::winograd_workspace_bytes(16, 16, 16, d, 8);
    EXPECT_GT(b, prev);
    prev = b;
  }
  EXPECT_LT(core::winograd_workspace_bytes(16, 16, 16, 3, 8),
            core::winograd_workspace_bytes(32, 16, 16, 3, 8));
}

TEST(WinogradWorkspace, RejectsBadArguments) {
  EXPECT_THROW(core::winograd_workspace_bytes(0, 8, 8, 1, 8),
               std::invalid_argument);
  EXPECT_THROW(core::winograd_workspace_bytes(8, 8, 8, -1, 8),
               std::invalid_argument);
}

TEST(DgefmmWorkspace, ZeroBelowCutoff) {
  EXPECT_EQ(baselines::dgefmm_workspace_bytes(64, 64, 64, 64, 8), 0u);
  EXPECT_EQ(baselines::dgefmm_workspace_bytes(200, 32, 200, 64, 8), 0u);
}

TEST(DgefmmWorkspace, OneLevelAboveCutoff) {
  // 100^3 with cutoff 64 recurses once: temps are 50x50 triples.
  const std::size_t b = baselines::dgefmm_workspace_bytes(100, 100, 100, 64, 8);
  EXPECT_EQ(b, 3 * ((50 * 50 * 8 + 63) / 64) * 64u);
}

TEST(DgefmmWorkspace, HandlesOddChains) {
  // 129 -> even core 128 -> halves 64 (<= cutoff): exactly one level.
  const std::size_t b = baselines::dgefmm_workspace_bytes(129, 129, 129, 64, 8);
  EXPECT_EQ(b, 3 * ((64 * 64 * 8 + 63) / 64) * 64u);
}

TEST(DgemmwWorkspace, FiveTempsPerLevel) {
  // 100^3 with cutoff 64: one level, ceil-halves 50.
  const std::size_t per = ((50 * 50 * 8 + 63) / 64) * 64u;
  EXPECT_EQ(baselines::dgemmw_workspace_bytes(100, 100, 100, 64, 8), 5 * per);
}

TEST(DgemmwWorkspace, CeilHalvingCoversOddDims) {
  // 129 -> ceil half 65 (> cutoff 64!) -> 33: two levels.
  const std::size_t l1 = ((65 * 65 * 8 + 63) / 64) * 64u;
  const std::size_t l2 = ((33 * 33 * 8 + 63) / 64) * 64u;
  EXPECT_EQ(baselines::dgemmw_workspace_bytes(129, 129, 129, 64, 8),
            5 * l1 + 5 * l2);
}

}  // namespace
}  // namespace strassen
