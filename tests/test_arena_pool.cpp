// Tests for the per-thread scratch-arena cache (src/parallel/arena_pool).
//
// The cache exists so a worker's recursion temporaries are allocated once,
// first-touched on that worker, and reused across tasks.  Two contracts
// matter beyond plain reuse:
//
//   * the fault-injection gate sees every ACQUISITION, not every system
//     allocation -- a cached arena that would have been refused by the gate
//     must still throw bad_alloc, or OOM sweeps would silently skip the
//     pooled path;
//   * the cache is strictly thread-local (no locks, no sharing), so stats
//     observed on this thread are exact.
#include <gtest/gtest.h>

#include <cstddef>
#include <thread>

#include "parallel/arena_pool.hpp"
#include "testing/fault_injection.hpp"

namespace strassen::parallel {
namespace {

namespace ft = ::strassen::testing;

TEST(ArenaPool, SecondAcquisitionReusesTheFirstArena) {
  purge_thread_arena_cache();
  const ArenaCacheStats before = thread_arena_cache_stats();
  ft::FaultInjector counter;  // kCountOnly: numbers gated acquisitions
  { ScratchArena a(1 << 16); }
  EXPECT_EQ(counter.allocations(), 1u);
  // The second acquisition is served from the cache -- the gate still sees
  // it (acquisition #2), but the hit counter proves no cold allocation ran.
  { ScratchArena b(1 << 16); }
  EXPECT_EQ(counter.allocations(), 2u);
  const ArenaCacheStats after = thread_arena_cache_stats();
  EXPECT_EQ(after.misses, before.misses + 1);
  EXPECT_EQ(after.hits, before.hits + 1);
  EXPECT_GE(after.cached_arenas, 1u);
  EXPECT_GE(after.cached_bytes, std::size_t{1} << 16);
}

TEST(ArenaPool, SmallerRequestFitsInCachedArena) {
  purge_thread_arena_cache();
  { ScratchArena a(1 << 16); }
  const ArenaCacheStats before = thread_arena_cache_stats();
  { ScratchArena b(1 << 12); }  // smaller than the cached capacity
  EXPECT_EQ(thread_arena_cache_stats().hits, before.hits + 1);
}

TEST(ArenaPool, ZeroByteRequestBypassesCacheAndGate) {
  purge_thread_arena_cache();
  const ArenaCacheStats before = thread_arena_cache_stats();
  ft::FaultInjector counter;
  { ScratchArena a(0); }
  EXPECT_EQ(counter.allocations(), 0u);
  const ArenaCacheStats after = thread_arena_cache_stats();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
}

TEST(ArenaPool, CacheHitStillConsultsTheAllocationGate) {
  purge_thread_arena_cache();
  { ScratchArena warm(1 << 16); }  // populate the cache
  // The NEXT gated acquisition must fail -- even though no system allocation
  // would happen, the cached reuse path consults the same gate.
  ft::FaultInjector inject(ft::FaultMode::kFailOnce, 1);
  EXPECT_THROW(ScratchArena hit(1 << 16), std::bad_alloc);
  EXPECT_EQ(inject.failures(), 1u);
  // The refusal is not sticky: with the transient spike over, reuse works.
  ScratchArena again(1 << 16);
  EXPECT_GE(again.arena().capacity(), std::size_t{1} << 16);
}

TEST(ArenaPool, PurgeEmptiesTheCache) {
  { ScratchArena a(1 << 14); }
  ASSERT_GE(thread_arena_cache_stats().cached_arenas, 1u);
  purge_thread_arena_cache();
  const ArenaCacheStats after = thread_arena_cache_stats();
  EXPECT_EQ(after.cached_arenas, 0u);
  EXPECT_EQ(after.cached_bytes, 0u);
}

TEST(ArenaPool, CacheIsPerThread) {
  purge_thread_arena_cache();
  { ScratchArena a(1 << 16); }
  const ArenaCacheStats mine = thread_arena_cache_stats();
  ASSERT_GE(mine.cached_arenas, 1u);
  // A fresh thread starts with an empty cache and its own counters.
  ArenaCacheStats theirs{};
  std::thread peer([&theirs] {
    { ScratchArena b(1 << 10); }
    theirs = thread_arena_cache_stats();
    purge_thread_arena_cache();
  });
  peer.join();
  EXPECT_EQ(theirs.hits, 0u);
  EXPECT_EQ(theirs.misses, 1u);
  // The peer's activity did not disturb this thread's cache.
  EXPECT_EQ(thread_arena_cache_stats().cached_arenas, mine.cached_arenas);
  purge_thread_arena_cache();
}

}  // namespace
}  // namespace strassen::parallel
