// kernels.hpp -- the register-blocked leaf GEMM microkernel.
//
// This is the routine that runs when the Strassen-Winograd recursion
// truncates: a column-major multiply of small matrices (tiles of side 16..64
// in MODGEMM; blocks up to the cutoff in the baselines).  Its cache behaviour
// -- contiguous tile (ld == rows) versus strided submatrix (ld == base
// matrix) -- is precisely what the paper's Fig. 3 measures.
//
// Two layers:
//
//   * gemm_leaf_generic -- the MemModel-templated 4x4 register-blocked
//     kernel (k-loop innermost; at -O2+ with RawMem the accumulators live in
//     vector registers and GCC emits FMAs).  Every memory model other than
//     RawMem runs this code, so traced/counted executions have a single
//     deterministic address stream.
//   * gemm_leaf -- the dispatching wrapper.  For the production (RawMem,
//     double) instantiation it routes to the kernel engine
//     (blas/kernels/registry.hpp) when a SIMD kernel is active: explicit
//     micro-kernels (AVX2+FMA 8x6/4x8, NEON 4x4) selected by a runtime CPU
//     probe.  With the scalar kernel active it compiles the local
//     gemm_leaf_generic instantiation instead -- the identical per-TU code
//     the pre-engine library ran -- so STRASSEN_KERNEL=scalar reproduces the
//     seed bit for bit.
//
// Edges (m or n not multiples of the register block) fall back to a scalar
// path in every implementation.
#pragma once

#include <cstddef>
#include <type_traits>

#include "common/memmodel.hpp"
#include "obs/collector.hpp"

namespace strassen::blas {

// Whether the leaf multiply overwrites C or accumulates into it.
enum class LeafMode { Overwrite, Accumulate };

namespace kernels {
// Implemented in kernels/registry.cpp: invokes the active engine kernel.
// Declared here (rather than via registry.hpp) to keep this header free of
// the engine types it is included by.
void dispatch_gemm_leaf(int m, int n, int k, const double* A, int lda,
                        const double* B, int ldb, double* C, int ldc,
                        LeafMode mode, double alpha) noexcept;
// True when the active kernel is a SIMD table (not scalar).  gemm_leaf only
// crosses into the engine when this holds; with the scalar kernel active it
// falls through to the caller's own gemm_leaf_generic instantiation instead,
// so STRASSEN_KERNEL=scalar executes exactly the per-TU code the pre-engine
// library compiled (out-of-line instantiations of the same template can
// contract FMAs differently, which would break seed bit-exactness).
bool simd_gemm_active() noexcept;
}  // namespace kernels

namespace detail {

// Scalar edge path: C(i0..i0+mr, j0..j0+nr) {=, +=} alpha * A*B.
template <class MM, class T>
void gemm_edge(MM& mm, int i0, int mr, int j0, int nr, int k, const T* A,
               int lda, const T* B, int ldb, T* C, int ldc, LeafMode mode,
               T alpha) {
  for (int j = j0; j < j0 + nr; ++j) {
    for (int i = i0; i < i0 + mr; ++i) {
      T acc{0};
      for (int p = 0; p < k; ++p)
        acc += mm.load(A + static_cast<std::size_t>(p) * lda + i) *
               mm.load(B + static_cast<std::size_t>(j) * ldb + p);
      T* c = C + static_cast<std::size_t>(j) * ldc + i;
      const T v = alpha * acc;
      mm.store(c, mode == LeafMode::Overwrite ? v
                                              : static_cast<T>(mm.load(c) + v));
    }
  }
}

}  // namespace detail

// C(m x n) {=, +=} alpha * A(m x k) * B(k x n); all column-major.  The
// portable 4x4 register-blocked kernel, templated over the memory model.
template <class MM, class T>
void gemm_leaf_generic(MM& mm, int m, int n, int k, const T* A, int lda,
                       const T* B, int ldb, T* C, int ldc, LeafMode mode,
                       T alpha = T{1}) {
  constexpr int MR = 4;
  constexpr int NR = 4;
  const int m4 = m - m % MR;
  const int n4 = n - n % NR;

  for (int j = 0; j < n4; j += NR) {
    const T* Bj0 = B + static_cast<std::size_t>(j + 0) * ldb;
    const T* Bj1 = B + static_cast<std::size_t>(j + 1) * ldb;
    const T* Bj2 = B + static_cast<std::size_t>(j + 2) * ldb;
    const T* Bj3 = B + static_cast<std::size_t>(j + 3) * ldb;
    for (int i = 0; i < m4; i += MR) {
      T c00{0}, c10{0}, c20{0}, c30{0};
      T c01{0}, c11{0}, c21{0}, c31{0};
      T c02{0}, c12{0}, c22{0}, c32{0};
      T c03{0}, c13{0}, c23{0}, c33{0};
      const T* Ap = A + i;
      for (int p = 0; p < k; ++p, Ap += lda) {
        const T a0 = mm.load(Ap + 0);
        const T a1 = mm.load(Ap + 1);
        const T a2 = mm.load(Ap + 2);
        const T a3 = mm.load(Ap + 3);
        const T b0 = mm.load(Bj0 + p);
        const T b1 = mm.load(Bj1 + p);
        const T b2 = mm.load(Bj2 + p);
        const T b3 = mm.load(Bj3 + p);
        c00 += a0 * b0; c10 += a1 * b0; c20 += a2 * b0; c30 += a3 * b0;
        c01 += a0 * b1; c11 += a1 * b1; c21 += a2 * b1; c31 += a3 * b1;
        c02 += a0 * b2; c12 += a1 * b2; c22 += a2 * b2; c32 += a3 * b2;
        c03 += a0 * b3; c13 += a1 * b3; c23 += a2 * b3; c33 += a3 * b3;
      }
      T* Cj = C + static_cast<std::size_t>(j) * ldc + i;
      auto out = [&](T* c, T acc) {
        const T v = alpha * acc;
        mm.store(c, mode == LeafMode::Overwrite
                        ? v
                        : static_cast<T>(mm.load(c) + v));
      };
      out(Cj + 0, c00); out(Cj + 1, c10); out(Cj + 2, c20); out(Cj + 3, c30);
      Cj += ldc;
      out(Cj + 0, c01); out(Cj + 1, c11); out(Cj + 2, c21); out(Cj + 3, c31);
      Cj += ldc;
      out(Cj + 0, c02); out(Cj + 1, c12); out(Cj + 2, c22); out(Cj + 3, c32);
      Cj += ldc;
      out(Cj + 0, c03); out(Cj + 1, c13); out(Cj + 2, c23); out(Cj + 3, c33);
    }
    if (m4 < m)
      detail::gemm_edge(mm, m4, m - m4, j, NR, k, A, lda, B, ldb, C, ldc, mode,
                        alpha);
  }
  if (n4 < n)
    detail::gemm_edge(mm, 0, m, n4, n - n4, k, A, lda, B, ldb, C, ldc, mode,
                      alpha);
}

// C(m x n) {=, +=} alpha * A(m x k) * B(k x n); all column-major.  The
// production (RawMem, double) instantiation runs the engine's active SIMD
// kernel; every other memory model / element type compiles the generic
// template, so traced and float executions are engine-independent.
template <class MM, class T>
void gemm_leaf(MM& mm, int m, int n, int k, const T* A, int lda, const T* B,
               int ldb, T* C, int ldc, LeafMode mode, T alpha = T{1}) {
  if constexpr (std::is_same_v<MM, RawMem> && std::is_same_v<T, double>) {
    // Counted/timed whether the engine dispatches SIMD or falls through to
    // the generic template: LeafTimer is a pointer test when unobserved.
    obs::LeafTimer lt;
    if (kernels::simd_gemm_active()) {
      kernels::dispatch_gemm_leaf(m, n, k, A, lda, B, ldb, C, ldc, mode,
                                  alpha);
      return;
    }
    gemm_leaf_generic(mm, m, n, k, A, lda, B, ldb, C, ldc, mode, alpha);
    return;
  }
  gemm_leaf_generic(mm, m, n, k, A, lda, B, ldb, C, ldc, mode, alpha);
}

// Convenience overload on the production model.
void gemm_leaf(int m, int n, int k, const double* A, int lda, const double* B,
               int ldb, double* C, int ldc, LeafMode mode, double alpha = 1.0);

}  // namespace strassen::blas
