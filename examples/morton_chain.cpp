// morton_chain -- keeping matrices in Morton order across a computation.
//
// The paper measures conversion at 5-15% of each MODGEMM call (Fig. 7) and
// shows the algorithm's true strength once operands are already in Morton
// order (Fig. 8).  This example demonstrates the application-side answer:
// a power-iteration-style chain  v_{t+1} ~ A . (A . ... (A . V))  where A
// and the iterates stay in Morton form; conversion happens once on entry
// and once on exit instead of at every multiply.
//
// It times the chain both ways and prints the saving.
#include <cstdio>
#include <cstdlib>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/modgemm.hpp"
#include "core/morton_matrix.hpp"

using namespace strassen;

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 600;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 6;
  std::printf("Chained multiplies V <- A.V, %d steps, n = %d\n\n", steps, n);

  Rng rng(42);
  Matrix<double> A(n, n), V(n, n);
  rng.fill_uniform(A.storage(), -0.5, 0.5);  // keep powers bounded-ish
  rng.fill_uniform(V.storage());

  // --- interface-level: convert on every call --------------------------
  Matrix<double> V1(n, n), tmp(n, n);
  copy_matrix<double>(V.view(), V1.view());
  WallTimer t;
  for (int s = 0; s < steps; ++s) {
    core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), A.ld(),
                  V1.data(), V1.ld(), 0.0, tmp.data(), tmp.ld());
    copy_matrix<double>(tmp.view(), V1.view());
  }
  const double t_interface = t.seconds();
  std::printf("interface-level (convert per call): %.3f s\n", t_interface);

  // --- Morton-native: convert once at each end -------------------------
  const core::MortonProductPlan plan = core::plan_morton_product(n, n, n);
  t.restart();
  core::MortonMatrix Am = core::MortonMatrix::from_colmajor(plan.a, A.view());
  core::MortonMatrix Vm = core::MortonMatrix::from_colmajor(plan.b, V.view());
  core::MortonMatrix Wm(plan.c);
  Arena arena(core::multiply_workspace_bytes(plan));
  for (int s = 0; s < steps; ++s) {
    core::multiply(Am, Vm, Wm, arena);
    std::swap(Vm, Wm);  // views swap; no data movement
  }
  Matrix<double> V2(n, n);
  Vm.to_colmajor(V2.view());
  const double t_native = t.seconds();
  std::printf("Morton-native   (convert at ends):  %.3f s  (%.1f%% faster)\n",
              t_native, 100.0 * (t_interface - t_native) / t_interface);

  const double err = max_abs_diff<double>(V1.view(), V2.view());
  std::printf("\nmax difference between the two paths: %.3e %s\n", err,
              err < 1e-6 ? "(OK)" : "(UNEXPECTEDLY LARGE!)");
  return err < 1e-6 ? 0 : 1;
}
