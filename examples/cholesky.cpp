// cholesky -- a numerical code built on the library, as the paper's intro
// motivates ("the central role of matrix multiplication as a building block
// in numerical codes").
//
// Right-looking blocked Cholesky factorization A = L.L^T of a symmetric
// positive-definite matrix.  Per panel of width NB:
//
//   1. factor the diagonal block (unblocked Cholesky),
//   2. solve the panel below it (triangular solve against the block),
//   3. update the trailing submatrix:  A22 <- A22 - L21 . L21^T
//
// Step 3 is a GEMM on matrices that shrink from n to NB -- the dominant
// cost -- and runs through either MODGEMM or the conventional algorithm.
// The example times both, verifies || A - L.L^T || for each, and shows where
// the Strassen advantage shows up (large trailing updates early in the
// factorization).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "baselines/conventional.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/modgemm.hpp"
#include "core/syrk.hpp"

using namespace strassen;

namespace {

using UpdateFn = void (*)(int m, int n, int k, const double* A, int lda,
                          double* C, int ldc);

void update_modgemm(int m, int n, int k, const double* A, int lda, double* C,
                    int ldc) {
  core::modgemm(Op::NoTrans, Op::Trans, m, n, k, -1.0, A, lda, A, lda, 1.0, C,
                ldc);
}

void update_conventional(int m, int n, int k, const double* A, int lda,
                         double* C, int ldc) {
  baselines::conventional_gemm(Op::NoTrans, Op::Trans, m, n, k, -1.0, A, lda,
                               A, lda, 1.0, C, ldc);
}

// The trailing block is symmetric and Cholesky only reads its lower
// triangle, so the rank-k update can skip half the work entirely.
void update_modsyrk(int m, int n, int k, const double* A, int lda, double* C,
                    int ldc) {
  (void)n;  // square symmetric update: n == m
  core::modsyrk(m, k, -1.0, A, lda, 1.0, C, ldc);
}

// Unblocked Cholesky of the nb x nb leading block; returns false if a pivot
// is non-positive (not SPD).
bool potf2(int nb, double* A, int lda) {
  for (int j = 0; j < nb; ++j) {
    double d = A[static_cast<std::size_t>(j) * lda + j];
    for (int p = 0; p < j; ++p) {
      const double v = A[static_cast<std::size_t>(p) * lda + j];
      d -= v * v;
    }
    if (d <= 0.0) return false;
    d = std::sqrt(d);
    A[static_cast<std::size_t>(j) * lda + j] = d;
    for (int i = j + 1; i < nb; ++i) {
      double v = A[static_cast<std::size_t>(j) * lda + i];
      for (int p = 0; p < j; ++p)
        v -= A[static_cast<std::size_t>(p) * lda + i] *
             A[static_cast<std::size_t>(p) * lda + j];
      A[static_cast<std::size_t>(j) * lda + i] = v / d;
    }
  }
  return true;
}

// L21 <- L21 * L11^-T  (right triangular solve against the factored block).
void trsm_rt(int m, int nb, const double* L11, int ldl, double* L21,
             int ldb) {
  for (int j = 0; j < nb; ++j) {
    const double djj = L11[static_cast<std::size_t>(j) * ldl + j];
    for (int i = 0; i < m; ++i) {
      double v = L21[static_cast<std::size_t>(j) * ldb + i];
      for (int p = 0; p < j; ++p)
        v -= L21[static_cast<std::size_t>(p) * ldb + i] *
             L11[static_cast<std::size_t>(p) * ldl + j];
      L21[static_cast<std::size_t>(j) * ldb + i] = v / djj;
    }
  }
}

// Blocked right-looking Cholesky; trailing updates via `update`.
bool cholesky(int n, double* A, int lda, int nb, UpdateFn update) {
  for (int j = 0; j < n; j += nb) {
    const int jb = std::min(nb, n - j);
    double* Ajj = A + static_cast<std::size_t>(j) * lda + j;
    if (!potf2(jb, Ajj, lda)) return false;
    const int rest = n - j - jb;
    if (rest > 0) {
      double* Abelow = A + static_cast<std::size_t>(j) * lda + j + jb;
      trsm_rt(rest, jb, Ajj, lda, Abelow, lda);
      double* Atrail = A + static_cast<std::size_t>(j + jb) * lda + j + jb;
      update(rest, rest, jb, Abelow, lda, Atrail, lda);
    }
  }
  return true;
}

// max_ij | A - L.L^T | over the lower triangle.
double residual(const Matrix<double>& A0, const Matrix<double>& L) {
  const int n = A0.rows();
  double worst = 0.0;
  for (int j = 0; j < n; ++j) {
    for (int i = j; i < n; ++i) {
      double v = 0.0;
      for (int p = 0; p <= j; ++p) v += L.at(i, p) * L.at(j, p);
      worst = std::max(worst, std::abs(v - A0.at(i, j)));
    }
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 1000;
  const int nb = argc > 2 ? std::atoi(argv[2]) : 128;
  std::printf(
      "Blocked Cholesky A = L.L^T, n = %d, panel %d; trailing updates via "
      "MODGEMM vs conventional gemm\n\n",
      n, nb);

  // A = M.M^T + n*I: symmetric positive definite by construction.
  Rng rng(3);
  Matrix<double> M(n, n), A0(n, n);
  rng.fill_uniform(M.storage());
  baselines::conventional_gemm(Op::NoTrans, Op::Trans, n, n, n, 1.0, M.data(),
                               n, M.data(), n, 0.0, A0.data(), n);
  for (int i = 0; i < n; ++i) A0.at(i, i) += n;

  const std::pair<const char*, UpdateFn> variants[] = {
      {"MODGEMM      ", update_modgemm},
      {"MODSYRK      ", update_modsyrk},
      {"conventional ", update_conventional}};
  for (const auto& [name, fn] : variants) {
    Matrix<double> L(n, n);
    copy_matrix<double>(A0.view(), L.view());
    WallTimer t;
    const bool ok = cholesky(n, L.data(), L.ld(), nb, fn);
    const double secs = t.seconds();
    if (!ok) {
      std::printf("%s factorization FAILED (matrix not SPD?)\n", name);
      return 1;
    }
    const double err = residual(A0, L);
    std::printf("%s %7.3f s   max |A - L.L'| = %.3e  %s\n", name, secs, err,
                err < 1e-8 * n ? "OK" : "LARGE!");
  }
  std::printf(
      "\nNote: each trailing update is (n-j) x (n-j) x %d -- the inner "
      "dimension is the panel width,\nso MODGEMM's planner runs these thin "
      "products through the conventional path below its\ndirect threshold "
      "and through Strassen splitting above it (see examples/rectangular).\n",
      nb);
  return 0;
}
