// blas_compat.hpp -- Fortran-BLAS-style C entry points for MODGEMM.
//
// The paper deliberately implements the Level 3 BLAS dgemm calling
// convention so existing codes can adopt it (S2.1, S6).  These symbols make
// that concrete: `strassen_dgemm_` / `strassen_sgemm_` take the exact
// reference-BLAS argument list (all arguments by pointer, Fortran-callable,
// trailing underscore).  Linking a shim that renames them to `dgemm_` /
// `sgemm_` turns the library into a drop-in replacement for matrix multiply
// in a Fortran or C code.
//
// Error handling follows the reference BLAS: an invalid argument is reported
// via xerbla-style message on stderr and the call returns without touching
// the output (no exceptions cross the C boundary).
#pragma once

extern "C" {

// C <- alpha * op(A) . op(B) + beta * C, double precision.
// transa/transb: "N"/"n" = no transpose, "T"/"t"/"C"/"c" = transpose.
void strassen_dgemm_(const char* transa, const char* transb, const int* m,
                     const int* n, const int* k, const double* alpha,
                     const double* a, const int* lda, const double* b,
                     const int* ldb, const double* beta, double* c,
                     const int* ldc);

// Single-precision variant.
void strassen_sgemm_(const char* transa, const char* transb, const int* m,
                     const int* n, const int* k, const float* alpha,
                     const float* a, const int* lda, const float* b,
                     const int* ldb, const float* beta, float* c,
                     const int* ldc);

}  // extern "C"

namespace strassen::blas {

// Number of the first invalid argument of the last failed compat call on
// this thread (1-based, as xerbla reports), or 0 if the last call was valid.
// Exposed for tests.
int last_compat_error();

}  // namespace strassen::blas
