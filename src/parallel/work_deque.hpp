// work_deque.hpp -- the per-worker deque of the work-stealing scheduler.
//
// Each pool worker owns one WorkDeque.  The owner treats it as a stack:
// push_bottom / pop_bottom at the bottom, so the task it resumes is the one
// it most recently spawned (cache-hot, depth-first).  Thieves take from the
// opposite end: steal_top removes the OLDEST task -- in the Winograd
// recursion that is the largest pending subtree, so one steal buys the thief
// the most work per synchronization -- and steal_top_half moves the top half
// of the deque in one grab, halving the steal rate when a victim has a run
// of queued siblings.
//
// The implementation is a mutex around a std::deque rather than a lock-free
// Chase-Lev buffer: tasks here are coarse (a sub-product is >= ~1e6 flops,
// hundreds of microseconds), so the lock is taken thousands of times per
// multiply, not millions, and a mutex keeps the structure trivially correct
// under TSan -- including the steal-vs-pop race on a one-element deque that
// lock-free deques get subtly wrong.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

namespace strassen::obs {
struct Collector;
}

namespace strassen::parallel {

// One scheduled task: the callable plus the observability collector that was
// active on the submitting thread (null when the call is unobserved).  The
// executing worker re-installs the collector so kernel counters and task
// telemetry attribute to the call that spawned the task, wherever it runs.
// `injected` marks tasks that entered through the shared injection queue:
// they have no owning worker, so moving one between deques is load balancing,
// not a steal, and the steal telemetry skips them for their whole lifetime
// (including after a grab parks them on some worker's deque).
struct PoolTask {
  std::function<void()> fn;
  obs::Collector* col = nullptr;
  bool injected = false;
};

class WorkDeque {
 public:
  WorkDeque() = default;
  WorkDeque(const WorkDeque&) = delete;
  WorkDeque& operator=(const WorkDeque&) = delete;

  // Owner side (bottom).
  void push_bottom(PoolTask task);
  bool pop_bottom(PoolTask& out);  // newest task (LIFO); false when empty

  // Thief side (top).
  bool steal_top(PoolTask& out);  // oldest task (FIFO); false when empty
  // Moves the top ceil(size/2) tasks into `out` (appended oldest-first).
  // Returns the number stolen (0 when empty).
  std::size_t steal_top_half(std::vector<PoolTask>& out);

  std::size_t size() const;
  bool empty() const { return size() == 0; }

 private:
  mutable std::mutex mutex_;
  std::deque<PoolTask> tasks_;
};

}  // namespace strassen::parallel
