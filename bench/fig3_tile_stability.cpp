// fig3_tile_stability -- reproduces Figure 3: performance of the leaf tile
// multiply, contiguous vs non-contiguous submatrices, as a function of the
// base matrix leading dimension (T = 24, 28, 32).
//
// Setup follows the paper (S3.3): submatrices of a base matrix M with
// A = M[0,0], B = M[T,T], C = M[2T,2T]; non-contiguous views use the base
// leading dimension (the x-axis), contiguous tiles use ld = T.
//
// Expected shape: contiguous tiles are flat across the sweep; non-contiguous
// views crater at the power-of-two leading dimension (256) from
// self-interference.  On a modern host the wall-clock dip is muted by large,
// associative L1 caches, so the table also reports the simulated miss ratio
// on the paper's direct-mapped geometry (16KB, 32B blocks), where the dip is
// unmistakable.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "blas/kernels.hpp"
#include "common/stats.hpp"
#include "support/bench_common.hpp"
#include "trace/presets.hpp"
#include "trace/traced_run.hpp"

using namespace strassen;

namespace {

// MFLOPS of repeated T x T leaf multiplies with the given leading dimension
// placement.  base_ld == 0 means contiguous dedicated tiles.
double tile_mflops(int tile, int base_ld, const MeasureOptions& opt) {
  Rng rng(tile * 1000 + base_ld);
  const bool contiguous = base_ld == 0;
  if (contiguous) {
    Matrix<double> A(tile, tile), B(tile, tile), C(tile, tile);
    rng.fill_uniform(A.storage());
    rng.fill_uniform(B.storage());
    const double s = measure(
        [&] {
          blas::gemm_leaf(tile, tile, tile, A.data(), A.ld(), B.data(), B.ld(),
                          C.data(), C.ld(), blas::LeafMode::Overwrite);
        },
        opt);
    return static_cast<double>(gemm_flops(tile, tile, tile)) / s * 1e-6;
  }
  Matrix<double> M(base_ld, 3 * tile);
  rng.fill_uniform(M.storage());
  const double* A = M.data();
  const double* B = M.data() + static_cast<std::size_t>(tile) * M.ld() + tile;
  double* C =
      M.data() + static_cast<std::size_t>(2 * tile) * M.ld() + 2 * tile;
  const double s = measure(
      [&] {
        blas::gemm_leaf(tile, tile, tile, A, M.ld(), B, M.ld(), C, M.ld(),
                        blas::LeafMode::Overwrite);
      },
      opt);
  return static_cast<double>(gemm_flops(tile, tile, tile)) / s * 1e-6;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::banner("Figure 3",
                "Leaf-tile multiply: contiguous tiles (ld = T) vs "
                "non-contiguous submatrices (ld = base LD); wall-clock MFLOPS "
                "and simulated 16KB direct-mapped miss ratios");

  MeasureOptions opt;
  opt.outer_reps = args.quick ? 2 : 3;
  opt.inner_reps = 2000;
  opt.warmup = 1;

  const std::vector<int> tiles{24, 28, 32};
  std::vector<int> lds;
  for (int ld = 96; ld <= 512; ld += args.quick ? 64 : 16) lds.push_back(ld);
  // Always include the paper's hot spot (the power-of-two LD) and its
  // well-behaved neighbor.
  lds.push_back(250);
  lds.push_back(256);
  std::sort(lds.begin(), lds.end());
  lds.erase(std::unique(lds.begin(), lds.end()), lds.end());

  Table table({"base_ld", "T", "MFLOPS(noncontig)", "MFLOPS(contig)",
               "miss%(noncontig)", "miss%(contig)"});
  args.maybe_mirror(table, "fig3_tile_stability");

  for (int tile : tiles) {
    const double contig_mflops = tile_mflops(tile, 0, opt);
    const trace::TraceResult contig_trace =
        trace::trace_tile_kernel(tile, 0, true, trace::paper_fig9_cache());
    for (int ld : lds) {
      if (ld < 3 * tile) continue;
      const double nc_mflops = tile_mflops(tile, ld, opt);
      const trace::TraceResult nc_trace = trace::trace_tile_kernel(
          tile, ld, false, trace::paper_fig9_cache());
      table.add_row({Table::num(static_cast<long long>(ld)),
                     Table::num(static_cast<long long>(tile)),
                     Table::num(nc_mflops, 1), Table::num(contig_mflops, 1),
                     Table::num(100.0 * nc_trace.l1_miss_ratio, 2),
                     Table::num(100.0 * contig_trace.l1_miss_ratio, 2)});
    }
  }
  table.print();
  std::printf(
      "\nExpected shape (paper Fig. 3): the contiguous columns are flat in "
      "both metrics;\nthe non-contiguous miss ratio spikes at base_ld = 256 "
      "(self-interference at the\npower-of-two stride) and is generally "
      "unstable across the sweep.\n");
  return 0;
}
