// autotune.hpp -- empirical selection of the planner's machine parameters.
//
// The paper observes (S3.1) that every Strassen implementation uses an
// EMPIRICALLY chosen recursion truncation point -- an order of magnitude
// above the ~16 that operation counting predicts, because the real constant
// is memory behaviour.  The paper hard-codes the values for its two machines
// (tile range 16..64, DGEFMM cutoff 64).  This module measures them on the
// host instead:
//
//   * leaf survey   -- MFLOPS of the contiguous leaf kernel across candidate
//                      tile sizes; the best becomes preferred_tile, and the
//                      range is clipped to tiles within `tolerance` of the
//                      best (Morton storage is what makes this a RANGE
//                      rather than a point, per Fig. 3);
//   * crossover     -- smallest problem size where one Strassen level beats
//                      the conventional blocked algorithm; sizes below it
//                      run direct (direct_threshold);
//   * strategy      -- one-shot Morton vs pack-fused timings across probe
//                      sizes of increasing recursion depth; the deepest
//                      recursion where pack-fused still wins becomes the
//                      planner's packfused_max_depth (the Morton conversion
//                      amortizes over 7^depth leaf products, so the
//                      crossover is a DEPTH, not a size).
//
// Measurement noise makes this advisory: results are clamped to sane bounds
// and the defaults are used where the survey is inconclusive.
#pragma once

#include <utility>
#include <vector>

#include "blas/kernels/registry.hpp"
#include "layout/plan.hpp"
#include "obs/report.hpp"

namespace strassen::tune {

struct AutotuneOptions {
  std::vector<int> candidate_tiles{16, 24, 32, 40, 48, 56, 64};
  // Tiles within this factor of the best tile's MFLOPS stay in the range.
  double tolerance = 0.85;
  // Problem sizes probed for the Strassen/conventional crossover.
  std::vector<int> crossover_sizes{64, 96, 128, 160, 192, 256};
  // Probe the Morton/pack-fused execution-strategy crossover
  // (layout::TileOptions::packfused_max_depth) with one-shot square
  // problems at these sizes.  Disable to keep the planner default.
  bool survey_strategy = true;
  std::vector<int> strategy_sizes{160, 288, 544};
  // Probe every shipped <m,k,n> algorithm family (analysis/algo_family.hpp)
  // against the <2,2,2> default on one rectangular problem, one forced pin
  // per family.  Purely diagnostic -- selection stays with the per-call pin,
  // STRASSEN_ALGO and layout::choose_algo -- and off by default so the
  // standard survey's cost and outcome are unchanged.
  bool survey_algo = false;
  // Shape of that probe.  The default is the Sayuri convolution-im2col shape
  // the family tables target (256 x 361 x 256: k = 19^2 partitions poorly
  // under powers of two).
  int algo_probe_m = 256, algo_probe_k = 361, algo_probe_n = 256;
  int repetitions = 3;  // timing repetitions per probe
  // Survey every available leaf-kernel implementation (and both AVX2
  // register-block variants) across the candidate tiles before the tile
  // survey, so the tile range is chosen for the kernel that will run.
  bool survey_kernels = true;
  // Install the winning kernel/variant as the engine's active kernel (a
  // process-global setting, see kernels/registry.hpp).
  bool apply_best_kernel = true;
  // Attach a full GemmReport (obs/report.hpp) for one representative
  // modgemm call per surveyed kernel configuration, so tuning runs can
  // explain WHY a configuration won (leaf time, fused-kernel usage, phase
  // split) instead of reporting a bare MFLOPS number.
  bool collect_reports = false;
  // Problem size of that representative call.
  int report_problem_size = 256;
};

struct AutotuneResult {
  layout::TileOptions tiles;  // ready to drop into ModgemmOptions
  // Winning leaf-kernel configuration (ready to drop into
  // ModgemmOptions::kernel / avx2_variant); scalar when the survey is off.
  blas::kernels::Kind best_kernel = blas::kernels::Kind::kScalar;
  blas::kernels::Avx2Variant best_avx2_variant =
      blas::kernels::Avx2Variant::kAuto;
  // Diagnostics: leaf MFLOPS per (kernel, variant, tile) probe.
  struct KernelSurveyPoint {
    blas::kernels::Kind kind;
    blas::kernels::Avx2Variant variant;  // kAuto for non-AVX2 kinds
    int tile;
    double mflops;
  };
  std::vector<KernelSurveyPoint> kernel_survey;
  // One report per surveyed configuration (same order as the distinct
  // (kind, variant) pairs of kernel_survey); empty unless
  // AutotuneOptions::collect_reports.
  std::vector<obs::GemmReport> config_reports;
  // Diagnostics: (tile, MFLOPS) pairs from the leaf survey.
  std::vector<std::pair<int, double>> leaf_survey;
  // (n, conventional seconds, strassen seconds) from the crossover probe.
  struct CrossoverPoint {
    int n;
    double conventional_seconds;
    double strassen_seconds;
  };
  std::vector<CrossoverPoint> crossover_probe;
  // Diagnostics from the execution-strategy probe: one-shot timings of the
  // same planned problem pinned to each strategy.  `depth` is the executed
  // recursion depth of the probe (the axis the tuned packfused_max_depth
  // lives on).  Empty unless AutotuneOptions::survey_strategy.
  struct StrategyPoint {
    int n;
    int depth;
    double morton_seconds;
    double packfused_seconds;
  };
  std::vector<StrategyPoint> strategy_probe;
  // Diagnostics from the algorithm-family probe: one-shot timing of the
  // probe shape pinned to each shipped family (k222 first, so every later
  // entry reads against [0]).  Empty unless AutotuneOptions::survey_algo.
  struct AlgoPoint {
    analysis::AlgoFamily family;
    double seconds;
  };
  std::vector<AlgoPoint> algo_probe;
};

// Runs the survey.  Costs a fraction of a second of measurement.
AutotuneResult autotune(const AutotuneOptions& opt = {});

}  // namespace strassen::tune
