// trace/memmodel.hpp -- the tracing MemModel: kernels under cache simulation.
//
// Drop-in for RawMem (common/memmodel.hpp): performs the access AND drives
// its byte address through a CacheHierarchy.  Instantiating any kernel in
// the library with TracingMem reproduces the paper's ATOM methodology at the
// source level: the full data-reference stream of the real computation, in
// execution order, against a configurable cache.
//
// Determinism guarantee: the SIMD leaf-kernel engine (blas/kernels/registry)
// only ever serves the (RawMem, double) instantiation.  TracingMem
// executions always compile the generic scalar loops -- the seed schedule,
// including the materialized Winograd operand sums -- so traced values and
// the simulated address stream are identical whatever kernel is active and
// whatever STRASSEN_KERNEL says.  (Across memory models, bit-identity is
// NOT guaranteed: the compiler contracts FMAs differently in the RawMem and
// TracingMem instantiations of the same kernel template.)
#pragma once

#include <cstdint>

#include "trace/cache.hpp"

namespace strassen::trace {

class TracingMem {
 public:
  explicit TracingMem(CacheHierarchy& hierarchy) : hierarchy_(&hierarchy) {}

  template <class T>
  T load(const T* p) {
    hierarchy_->access(reinterpret_cast<std::uintptr_t>(p), /*is_write=*/false);
    return *p;
  }
  template <class T>
  void store(T* p, T v) {
    hierarchy_->access(reinterpret_cast<std::uintptr_t>(p), /*is_write=*/true);
    *p = v;
  }

  CacheHierarchy& hierarchy() { return *hierarchy_; }

 private:
  CacheHierarchy* hierarchy_;
};

}  // namespace strassen::trace
