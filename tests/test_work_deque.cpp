// Unit tests for the per-worker steal deque (src/parallel/work_deque).
//
// The scheduling contract: the owner works depth-first (push/pop at the
// bottom, LIFO -- newest task first, so a worker descends its own subtree),
// thieves take from the top (FIFO -- oldest task first, the biggest
// remaining subtree), and steal_top_half migrates ceil(n/2) tasks in one
// locked grab so a thief leaves with enough work to stay busy.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "parallel/work_deque.hpp"

namespace strassen::parallel {
namespace {

PoolTask marked(int id, std::vector<int>* order) {
  return PoolTask{[id, order] { order->push_back(id); }, nullptr};
}

TEST(WorkDeque, OwnerPopsNewestFirst) {
  WorkDeque dq;
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) dq.push_bottom(marked(i, &order));
  PoolTask t;
  for (int expect : {3, 2, 1, 0}) {
    ASSERT_TRUE(dq.pop_bottom(t));
    t.fn();
    EXPECT_EQ(order.back(), expect);
  }
  EXPECT_FALSE(dq.pop_bottom(t));
  EXPECT_TRUE(dq.empty());
}

TEST(WorkDeque, ThiefStealsOldestFirst) {
  WorkDeque dq;
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) dq.push_bottom(marked(i, &order));
  PoolTask t;
  for (int expect : {0, 1, 2, 3}) {
    ASSERT_TRUE(dq.steal_top(t));
    t.fn();
    EXPECT_EQ(order.back(), expect);
  }
  EXPECT_FALSE(dq.steal_top(t));
}

TEST(WorkDeque, StealHalfTakesCeilHalfFromTheTop) {
  WorkDeque dq;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) dq.push_bottom(marked(i, &order));
  std::vector<PoolTask> batch;
  EXPECT_EQ(dq.steal_top_half(batch), 3u);  // ceil(5/2)
  ASSERT_EQ(batch.size(), 3u);
  for (PoolTask& t : batch) t.fn();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));  // the OLDEST entries
  EXPECT_EQ(dq.size(), 2u);
  // The owner still sees its newest task next.
  PoolTask t;
  ASSERT_TRUE(dq.pop_bottom(t));
  t.fn();
  EXPECT_EQ(order.back(), 4);
}

TEST(WorkDeque, StealHalfOfOneTakesIt) {
  WorkDeque dq;
  std::vector<int> order;
  dq.push_bottom(marked(0, &order));
  std::vector<PoolTask> batch;
  EXPECT_EQ(dq.steal_top_half(batch), 1u);
  EXPECT_TRUE(dq.empty());
}

TEST(WorkDeque, EmptyStealsAndPopsFail) {
  WorkDeque dq;
  PoolTask t;
  std::vector<PoolTask> batch;
  EXPECT_FALSE(dq.pop_bottom(t));
  EXPECT_FALSE(dq.steal_top(t));
  EXPECT_EQ(dq.steal_top_half(batch), 0u);
  EXPECT_EQ(dq.size(), 0u);
}

TEST(WorkDequeStress, ConcurrentStealVsPopLosesNothing) {
  // One owner popping at the bottom, three thieves stealing (singly and in
  // batches) at the top, with the owner refilling -- every task must run
  // exactly once.  This is the test the TSan leg leans on.
  WorkDeque dq;
  constexpr int kTasks = 20000;
  std::atomic<int> executed{0};
  std::atomic<int> produced{0};
  std::atomic<bool> done_producing{false};

  std::thread owner([&] {
    PoolTask t;
    int next = 0;
    while (next < kTasks || dq.pop_bottom(t)) {
      if (next < kTasks) {
        dq.push_bottom(PoolTask{[&executed] { ++executed; }, nullptr});
        ++produced;
        ++next;
        continue;
      }
      t.fn();
    }
    done_producing = true;
  });
  std::vector<std::thread> thieves;
  for (int i = 0; i < 3; ++i) {
    thieves.emplace_back([&, i] {
      PoolTask t;
      std::vector<PoolTask> batch;
      while (!done_producing.load() || !dq.empty()) {
        if (i == 0) {
          if (dq.steal_top(t)) t.fn();
        } else {
          batch.clear();
          dq.steal_top_half(batch);
          for (PoolTask& b : batch) b.fn();
        }
      }
    });
  }
  owner.join();
  for (auto& th : thieves) th.join();
  // Drain anything the owner popped into `t` races left behind.
  PoolTask t;
  while (dq.pop_bottom(t)) t.fn();
  EXPECT_EQ(produced.load(), kTasks);
  EXPECT_EQ(executed.load(), kTasks);
}

}  // namespace
}  // namespace strassen::parallel
