// Environment-variable parsing hardening (STRASSEN_THREADS, STRASSEN_KERNEL,
// STRASSEN_SCHEDULE): well-formed values are honoured, malformed values are
// rejected loudly with a message naming the offending value -- never
// silently degraded at a throwing entry point.
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "blas/kernels/registry.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "core/modgemm.hpp"
#include "parallel/thread_pool.hpp"

namespace strassen {
namespace {

// Runs `fn`, expecting std::invalid_argument whose message contains every
// string in `needles` (the offending value must be named).
template <class Fn>
void expect_rejects(Fn&& fn, std::initializer_list<const char*> needles) {
  try {
    fn();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    for (const char* needle : needles)
      EXPECT_NE(msg.find(needle), std::string::npos)
          << "message \"" << msg << "\" does not name \"" << needle << "\"";
  }
}

// Restores (or removes) an environment variable on scope exit, so a failing
// assertion cannot leak a malformed value into later tests.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (had_) saved_ = old;
    if (value != nullptr)
      ::setenv(name, value, 1);
    else
      ::unsetenv(name);
  }
  ~ScopedEnv() {
    if (had_)
      ::setenv(name_, saved_.c_str(), 1);
    else
      ::unsetenv(name_);
  }

 private:
  const char* name_;
  bool had_ = false;
  std::string saved_;
};

// ---- STRASSEN_THREADS -----------------------------------------------------

TEST(EnvParsing, ThreadCountAcceptsPositiveIntegers) {
  using parallel::ThreadPool;
  EXPECT_EQ(ThreadPool::parse_thread_count("1"), 1);
  EXPECT_EQ(ThreadPool::parse_thread_count("17"), 17);
  EXPECT_EQ(ThreadPool::parse_thread_count("4096"), 4096);
}

TEST(EnvParsing, ThreadCountRejectsMalformedValues) {
  using parallel::ThreadPool;
  expect_rejects([] { ThreadPool::parse_thread_count("not-a-number"); },
                 {"STRASSEN_THREADS", "not-a-number"});
  expect_rejects([] { ThreadPool::parse_thread_count("-2"); },
                 {"STRASSEN_THREADS", "-2"});
  expect_rejects([] { ThreadPool::parse_thread_count("0"); },
                 {"STRASSEN_THREADS", "0"});
  // Trailing junk must not be accepted as the leading number.
  expect_rejects([] { ThreadPool::parse_thread_count("8abc"); },
                 {"STRASSEN_THREADS", "8abc"});
  expect_rejects([] { ThreadPool::parse_thread_count("4097"); },
                 {"STRASSEN_THREADS", "4097"});
  expect_rejects([] { ThreadPool::parse_thread_count("99999999999999999999"); },
                 {"STRASSEN_THREADS"});
  expect_rejects([] { ThreadPool::parse_thread_count(""); },
                 {"STRASSEN_THREADS"});
  expect_rejects([] { ThreadPool::parse_thread_count(nullptr); },
                 {"STRASSEN_THREADS"});
}

TEST(EnvParsing, DefaultThreadCountThrowsOnMalformedEnv) {
  ScopedEnv env("STRASSEN_THREADS", "three");
  expect_rejects([] { parallel::ThreadPool::default_thread_count(); },
                 {"STRASSEN_THREADS", "three"});
}

// ---- STRASSEN_KERNEL ------------------------------------------------------

TEST(EnvParsing, KernelNameAcceptsKnownNames) {
  using namespace blas::kernels;
  EXPECT_EQ(parse_kernel_name(""), Kind::kAuto);
  EXPECT_EQ(parse_kernel_name("auto"), Kind::kAuto);
  EXPECT_EQ(parse_kernel_name("scalar"), Kind::kScalar);
  EXPECT_EQ(parse_kernel_name("avx2"), Kind::kAvx2);
  EXPECT_EQ(parse_kernel_name("neon"), Kind::kNeon);
  Avx2Variant v = Avx2Variant::kAuto;
  EXPECT_EQ(parse_kernel_name("avx2-8x6", &v), Kind::kAvx2);
  EXPECT_EQ(v, Avx2Variant::k8x6);
  EXPECT_EQ(parse_kernel_name("avx2-4x8", &v), Kind::kAvx2);
  EXPECT_EQ(v, Avx2Variant::k4x8);
}

TEST(EnvParsing, KernelNameRejectsUnknownNames) {
  using blas::kernels::parse_kernel_name;
  expect_rejects([] { parse_kernel_name("bogus"); },
                 {"STRASSEN_KERNEL", "bogus"});
  expect_rejects([] { parse_kernel_name("avx512"); },
                 {"STRASSEN_KERNEL", "avx512"});
  // Case and whitespace are not forgiven (exact-match contract).
  expect_rejects([] { parse_kernel_name("Scalar"); },
                 {"STRASSEN_KERNEL", "Scalar"});
  expect_rejects([] { parse_kernel_name("scalar "); }, {"STRASSEN_KERNEL"});
  expect_rejects([] { parse_kernel_name(nullptr); }, {"STRASSEN_KERNEL"});
}

TEST(EnvParsing, KernelEnvValidationThrowsOnMalformedValue) {
  {
    ScopedEnv env("STRASSEN_KERNEL", "bogus");
    expect_rejects([] { blas::kernels::require_valid_kernel_env(); },
                   {"STRASSEN_KERNEL", "bogus"});
  }
  {
    ScopedEnv env("STRASSEN_KERNEL", "scalar");
    EXPECT_NO_THROW(blas::kernels::require_valid_kernel_env());
  }
  {
    ScopedEnv env("STRASSEN_KERNEL", nullptr);
    EXPECT_NO_THROW(blas::kernels::require_valid_kernel_env());
  }
}

TEST(EnvParsing, ModgemmFailsLoudlyUnderBogusKernelEnvAndLeavesCUntouched) {
  ScopedEnv env("STRASSEN_KERNEL", "avx2-typo");
  const int n = 96;
  Matrix<double> A(n, n), B(n, n), C(n, n), C0(n, n);
  Rng rng(7);
  rng.fill_int(A.storage());
  rng.fill_int(B.storage());
  rng.fill_int(C.storage());
  copy_matrix<double>(C.view(), C0.view());
  expect_rejects(
      [&] {
        core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
                      B.data(), n, 0.0, C.data(), n);
      },
      {"STRASSEN_KERNEL", "avx2-typo"});
  EXPECT_EQ(max_abs_diff<double>(C.view(), C0.view()), 0.0);
}

// ---- STRASSEN_SCHEDULE ----------------------------------------------------

TEST(EnvParsing, ScheduleFamilyAcceptsKnownNames) {
  using analysis::ScheduleFamily;
  using core::detail::parse_schedule_family;
  EXPECT_EQ(parse_schedule_family("auto"), ScheduleFamily::kAuto);
  EXPECT_EQ(parse_schedule_family("winograd"), ScheduleFamily::kWinograd);
  EXPECT_EQ(parse_schedule_family("winograd-lowmem"), ScheduleFamily::kLowMem);
  EXPECT_EQ(parse_schedule_family("winograd-inplace"),
            ScheduleFamily::kInPlace);
}

TEST(EnvParsing, ScheduleFamilyRejectsUnknownNames) {
  using core::detail::parse_schedule_family;
  expect_rejects([] { parse_schedule_family("lowmem"); },
                 {"STRASSEN_SCHEDULE", "lowmem"});
  expect_rejects([] { parse_schedule_family("winograd-bogus"); },
                 {"STRASSEN_SCHEDULE", "winograd-bogus"});
  expect_rejects([] { parse_schedule_family(nullptr); },
                 {"STRASSEN_SCHEDULE"});
}

TEST(EnvParsing, ScheduleEnvOverrideSelectsFamilyAndRejectsGarbage) {
  const int n = 200;
  Matrix<double> A(n, n), B(n, n), C(n, n), Ref(n, n);
  Rng rng(11);
  rng.fill_int(A.storage(), -3, 3);
  rng.fill_int(B.storage(), -3, 3);
  blas::naive_gemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
                   B.data(), n, 0.0, Ref.data(), n);
  {
    ScopedEnv env("STRASSEN_SCHEDULE", "winograd-lowmem");
    core::ModgemmReport report;
    core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
                  B.data(), n, 0.0, C.data(), n, {}, &report);
    EXPECT_STREQ(report.schedule, "winograd-lowmem");
    EXPECT_EQ(max_abs_diff<double>(C.view(), Ref.view()), 0.0);
  }
  {
    ScopedEnv env("STRASSEN_SCHEDULE", "2-temp");
    Matrix<double> C2(n, n), C0(n, n);
    rng.fill_int(C2.storage());
    copy_matrix<double>(C2.view(), C0.view());
    expect_rejects(
        [&] {
          core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
                        B.data(), n, 0.0, C2.data(), n);
        },
        {"STRASSEN_SCHEDULE", "2-temp"});
    EXPECT_EQ(max_abs_diff<double>(C2.view(), C0.view()), 0.0);
  }
}

// ---- STRASSEN_STRATEGY ----------------------------------------------------

TEST(EnvParsing, ExecStrategyAcceptsKnownNames) {
  using core::detail::parse_exec_strategy;
  using layout::ExecStrategy;
  EXPECT_EQ(parse_exec_strategy("auto"), ExecStrategy::kAuto);
  EXPECT_EQ(parse_exec_strategy("morton"), ExecStrategy::kMorton);
  EXPECT_EQ(parse_exec_strategy("packfused"), ExecStrategy::kPackFused);
}

TEST(EnvParsing, ExecStrategyRejectsUnknownNames) {
  using core::detail::parse_exec_strategy;
  expect_rejects([] { parse_exec_strategy("fused"); },
                 {"STRASSEN_STRATEGY", "fused"});
  expect_rejects([] { parse_exec_strategy("pack-fused"); },
                 {"STRASSEN_STRATEGY", "pack-fused"});
  // Case is not forgiven (exact-match contract, like STRASSEN_KERNEL).
  expect_rejects([] { parse_exec_strategy("PACKFUSED"); },
                 {"STRASSEN_STRATEGY", "PACKFUSED"});
  expect_rejects([] { parse_exec_strategy("morton "); },
                 {"STRASSEN_STRATEGY"});
  expect_rejects([] { parse_exec_strategy(nullptr); },
                 {"STRASSEN_STRATEGY"});
}

TEST(EnvParsing, StrategyEnvOverrideSelectsStrategyAndRejectsGarbage) {
  const int n = 200;
  Matrix<double> A(n, n), B(n, n), C(n, n), Ref(n, n);
  Rng rng(13);
  rng.fill_int(A.storage(), -3, 3);
  rng.fill_int(B.storage(), -3, 3);
  blas::naive_gemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
                   B.data(), n, 0.0, Ref.data(), n);
  {
    ScopedEnv env("STRASSEN_STRATEGY", "packfused");
    core::ModgemmReport report;
    core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
                  B.data(), n, 0.0, C.data(), n, {}, &report);
    EXPECT_STREQ(report.strategy, "packfused");
    EXPECT_EQ(max_abs_diff<double>(C.view(), Ref.view()), 0.0);
  }
  {
    ScopedEnv env("STRASSEN_STRATEGY", "no-conversion");
    Matrix<double> C2(n, n), C0(n, n);
    rng.fill_int(C2.storage());
    copy_matrix<double>(C2.view(), C0.view());
    expect_rejects(
        [&] {
          core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
                        B.data(), n, 0.0, C2.data(), n);
        },
        {"STRASSEN_STRATEGY", "no-conversion"});
    EXPECT_EQ(max_abs_diff<double>(C2.view(), C0.view()), 0.0);
  }
}

TEST(EnvParsing, StrategyPinOutranksEnvOverride) {
  // The per-call pin must win so tests asserting Morton-only observables
  // stay meaningful under a forced STRASSEN_STRATEGY=packfused suite run.
  ScopedEnv env("STRASSEN_STRATEGY", "packfused");
  const int n = 200;
  Matrix<double> A(n, n), B(n, n), C(n, n);
  Rng rng(17);
  rng.fill_int(A.storage(), -3, 3);
  rng.fill_int(B.storage(), -3, 3);
  core::ModgemmOptions opt;
  opt.strategy = layout::ExecStrategy::kMorton;
  core::ModgemmReport report;
  core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
                B.data(), n, 0.0, C.data(), n, opt, &report);
  EXPECT_STREQ(report.strategy, "morton");
  EXPECT_GT(report.convert_in_seconds, 0.0);
}

}  // namespace
}  // namespace strassen
