// cache.hpp -- trace-driven cache simulation (the ATOM + cache-sim stand-in).
//
// The paper collected full address traces with ATOM binary instrumentation
// and replayed them through a cache simulator (16KB direct-mapped, 32-byte
// blocks for Fig. 9).  Here the address stream comes from the MemModel
// template hook (common/memmodel.hpp): running any kernel with a TracingMem
// (trace/memmodel.hpp) drives every data load/store through a CacheHierarchy.
//
// The model: per level, a set-associative cache with true-LRU replacement,
// write-allocate, and (for multi-level hierarchies) misses forwarded to the
// next level.  Writebacks are not modeled -- miss RATIOS, which is what the
// paper reports, do not depend on them.  A simple latency model turns the
// per-level hit counts into an estimated memory-system cost, which the
// platform-emulation bench (Fig. 6) uses to contrast the DEC Alpha and Sun
// Ultra cache geometries on identical address streams.
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace strassen::trace {

struct CacheConfig {
  std::string name = "L1";
  std::size_t size_bytes = 16 * 1024;
  std::size_t block_bytes = 32;
  int associativity = 1;       // 1 = direct-mapped
  double hit_latency = 1.0;    // cycles charged per access that HITS here
  // Enable three-C's miss classification (the paper's CProf analysis,
  // S4.2): each miss is attributed as compulsory (first touch of the
  // block), capacity (a fully-associative LRU cache of the same size would
  // also miss), or conflict (only this cache's set mapping misses).  Costs
  // a shadow fully-associative model per access; off by default.
  bool classify = false;
};

// Three-C's attribution of the misses of one cache level.
struct MissBreakdown {
  std::uint64_t compulsory = 0;
  std::uint64_t capacity = 0;
  std::uint64_t conflict = 0;
  std::uint64_t total() const { return compulsory + capacity + conflict; }
};

// One level of set-associative cache with LRU replacement.
class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  // Touches `addr`; returns true on hit.  On miss the block is installed.
  bool access(std::uintptr_t addr, bool is_write);

  void reset_stats();
  // Drops all cached blocks and statistics (cold restart).
  void flush();

  const CacheConfig& config() const { return config_; }
  std::uint64_t accesses() const { return accesses_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t writes() const { return writes_; }
  double miss_ratio() const {
    return accesses_ ? static_cast<double>(misses_) / accesses_ : 0.0;
  }
  // Valid only when config().classify is set; breakdown.total() == misses().
  const MissBreakdown& breakdown() const { return breakdown_; }

 private:
  // Attributes a miss to one of the three C's given the shadow-model state.
  void classify_miss_tally(std::uint64_t block, bool shadow_hit);
  // Keeps the shadow fully-associative LRU model in sync (hits and misses).
  void shadow_touch(std::uint64_t block);

  CacheConfig config_;
  std::size_t num_sets_;
  std::size_t block_shift_;
  // ways_[set * associativity + way] = block tag; kEmpty when invalid.
  // Way order within a set is LRU: way 0 is most recently used.
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};
  std::vector<std::uint64_t> ways_;
  std::uint64_t accesses_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t writes_ = 0;

  // --- classification state (allocated only when config_.classify) ---
  MissBreakdown breakdown_;
  std::unordered_set<std::uint64_t> ever_seen_;  // compulsory detection
  // Shadow fully-associative LRU cache of the same capacity: front = MRU.
  std::size_t shadow_capacity_ = 0;
  std::list<std::uint64_t> shadow_lru_;
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator>
      shadow_index_;
};

// An inclusive multi-level hierarchy: every access touches L1; L1 misses
// probe L2; and so on.  Accesses missing every level are charged
// memory_latency.
class CacheHierarchy {
 public:
  CacheHierarchy(std::string name, std::vector<CacheConfig> levels,
                 double memory_latency = 60.0);

  void access(std::uintptr_t addr, bool is_write);

  void reset_stats();
  void flush();

  const std::string& name() const { return name_; }
  std::size_t num_levels() const { return levels_.size(); }
  const Cache& level(std::size_t i) const { return levels_[i]; }
  std::uint64_t total_accesses() const {
    return levels_.empty() ? 0 : levels_[0].accesses();
  }
  // Misses that fell through the last level to memory.
  std::uint64_t memory_accesses() const { return memory_accesses_; }
  double l1_miss_ratio() const {
    return levels_.empty() ? 0.0 : levels_[0].miss_ratio();
  }
  // Latency-weighted cost of the recorded access stream, in model cycles:
  // each access is charged the hit latency of the level that served it
  // (memory_latency if none did).
  double estimated_cycles() const;

 private:
  std::string name_;
  std::vector<Cache> levels_;
  double memory_latency_;
  std::uint64_t memory_accesses_ = 0;
};

}  // namespace strassen::trace
