// level1.hpp -- contiguous vector kernels (MemModel-templated).
//
// Morton storage keeps every quadrant contiguous, so all 15 quadrant
// additions of the Winograd schedule reduce to these single-loop kernels --
// the paper's "secondary benefit" of the layout (S3.3).  The same kernels do
// zero-padding and scaling work in the conversion routines.
//
// All kernels are alias-safe in the patterns the schedules use: `dst` may
// equal `a` or `b` exactly because each element is fully read before being
// written (partial overlap is not supported).  This exact-alias contract is
// why the loops below cannot simply be restrict-qualified: the engine's
// scalar implementations (kernels/scalar.cpp) instead branch on the alias
// check and run a restrict-qualified loop on the common disjoint case, which
// is what lets GCC vectorize them without runtime overlap guards.
//
// Like gemm_leaf, the four add/sub kernels dispatch the production (RawMem,
// double) instantiation to the kernel engine's SIMD implementations; every
// other model runs the generic loops, keeping traced address streams exact.
#pragma once

#include <cstddef>
#include <type_traits>

#include "common/memmodel.hpp"
#include "obs/collector.hpp"

namespace strassen::blas {

namespace kernels {
// Implemented in kernels/registry.cpp: the active engine's element-wise
// kernels (see kernels/registry.hpp).
void dispatch_vadd(std::size_t n, double* dst, const double* a,
                   const double* b) noexcept;
void dispatch_vsub(std::size_t n, double* dst, const double* a,
                   const double* b) noexcept;
void dispatch_vadd_inplace(std::size_t n, double* dst, const double* a) noexcept;
void dispatch_vsub_inplace(std::size_t n, double* dst, const double* a) noexcept;
}  // namespace kernels

// dst[i] = a[i] + b[i]
template <class MM, class T>
void vadd(MM& mm, std::size_t n, T* dst, const T* a, const T* b) {
  if constexpr (std::is_same_v<MM, RawMem> && std::is_same_v<T, double>) {
    if (obs::Collector* c = obs::current()) c->note_elementwise();
    kernels::dispatch_vadd(n, dst, a, b);
  } else {
    for (std::size_t i = 0; i < n; ++i)
      mm.store(dst + i, static_cast<T>(mm.load(a + i) + mm.load(b + i)));
  }
}

// dst[i] = a[i] - b[i]
template <class MM, class T>
void vsub(MM& mm, std::size_t n, T* dst, const T* a, const T* b) {
  if constexpr (std::is_same_v<MM, RawMem> && std::is_same_v<T, double>) {
    if (obs::Collector* c = obs::current()) c->note_elementwise();
    kernels::dispatch_vsub(n, dst, a, b);
  } else {
    for (std::size_t i = 0; i < n; ++i)
      mm.store(dst + i, static_cast<T>(mm.load(a + i) - mm.load(b + i)));
  }
}

// dst[i] += a[i]
template <class MM, class T>
void vadd_inplace(MM& mm, std::size_t n, T* dst, const T* a) {
  if constexpr (std::is_same_v<MM, RawMem> && std::is_same_v<T, double>) {
    if (obs::Collector* c = obs::current()) c->note_elementwise();
    kernels::dispatch_vadd_inplace(n, dst, a);
  } else {
    for (std::size_t i = 0; i < n; ++i)
      mm.store(dst + i, static_cast<T>(mm.load(dst + i) + mm.load(a + i)));
  }
}

// dst[i] -= a[i]
template <class MM, class T>
void vsub_inplace(MM& mm, std::size_t n, T* dst, const T* a) {
  if constexpr (std::is_same_v<MM, RawMem> && std::is_same_v<T, double>) {
    if (obs::Collector* c = obs::current()) c->note_elementwise();
    kernels::dispatch_vsub_inplace(n, dst, a);
  } else {
    for (std::size_t i = 0; i < n; ++i)
      mm.store(dst + i, static_cast<T>(mm.load(dst + i) - mm.load(a + i)));
  }
}

// dst[i] = src[i]
template <class MM, class T>
void vcopy(MM& mm, std::size_t n, T* dst, const T* src) {
  for (std::size_t i = 0; i < n; ++i) mm.store(dst + i, mm.load(src + i));
}

// dst[i] = 0
template <class MM, class T>
void vzero(MM& mm, std::size_t n, T* dst) {
  for (std::size_t i = 0; i < n; ++i) mm.store(dst + i, T{0});
}

// dst[i] *= alpha
template <class MM, class T>
void vscale(MM& mm, std::size_t n, T* dst, T alpha) {
  for (std::size_t i = 0; i < n; ++i)
    mm.store(dst + i, static_cast<T>(alpha * mm.load(dst + i)));
}

// dst[i] = alpha * a[i] + beta * dst[i]   (the dgemm alpha/beta fix-up)
template <class MM, class T>
void vaxpby(MM& mm, std::size_t n, T* dst, T alpha, const T* a, T beta) {
  if (beta == T{0}) {
    for (std::size_t i = 0; i < n; ++i)
      mm.store(dst + i, static_cast<T>(alpha * mm.load(a + i)));
  } else {
    for (std::size_t i = 0; i < n; ++i)
      mm.store(dst + i, static_cast<T>(alpha * mm.load(a + i) +
                                       beta * mm.load(dst + i)));
  }
}

// Convenience overloads running on the production RawMem model.
void vadd(std::size_t n, double* dst, const double* a, const double* b);
void vsub(std::size_t n, double* dst, const double* a, const double* b);
void vcopy(std::size_t n, double* dst, const double* src);
void vzero(std::size_t n, double* dst);
void vscale(std::size_t n, double* dst, double alpha);
void vaxpby(std::size_t n, double* dst, double alpha, const double* a,
            double beta);

}  // namespace strassen::blas
