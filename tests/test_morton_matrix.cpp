// Tests for the Morton-native API (src/core/morton_matrix) -- the paper's
// Fig. 8 scenario: matrices kept in Morton order across multiplies.
#include <gtest/gtest.h>

#include "blas/gemm.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "core/morton_matrix.hpp"

namespace strassen::core {
namespace {

TEST(MortonProductPlanTest, CompatibleTriple) {
  const MortonProductPlan p = plan_morton_product(300, 400, 350);
  EXPECT_EQ(p.a.depth, p.b.depth);
  EXPECT_EQ(p.b.depth, p.c.depth);
  EXPECT_EQ(p.a.tile_cols, p.b.tile_rows);
  EXPECT_EQ(p.c.tile_rows, p.a.tile_rows);
  EXPECT_EQ(p.c.tile_cols, p.b.tile_cols);
  EXPECT_EQ(p.a.rows, 300);
  EXPECT_EQ(p.a.cols, 400);
  EXPECT_EQ(p.b.cols, 350);
}

TEST(MortonProductPlanTest, RejectsTinyAndExtremeShapes) {
  EXPECT_THROW(plan_morton_product(32, 32, 32), std::invalid_argument);
  EXPECT_THROW(plan_morton_product(4096, 256, 4096), std::invalid_argument);
}

TEST(MortonMatrixTest, RoundTripThroughColumnMajor) {
  const int m = 150, n = 170;
  Rng rng(1);
  Matrix<double> src(m, n), dst(m, n);
  rng.fill_uniform(src.storage());
  const layout::MortonLayout l{m, n, 25, 22, 3};
  MortonMatrix mm = MortonMatrix::from_colmajor(l, src.view());
  EXPECT_EQ(mm.rows(), m);
  EXPECT_EQ(mm.cols(), n);
  mm.to_colmajor(dst.view());
  EXPECT_EQ(max_abs_diff<double>(src.view(), dst.view()), 0.0);
}

TEST(MortonMatrixTest, ElementAccessors) {
  const layout::MortonLayout l{10, 10, 5, 5, 1};
  MortonMatrix mm(l);
  mm.set(3, 7, 42.0);
  EXPECT_EQ(mm.at(3, 7), 42.0);
  EXPECT_EQ(mm.at(0, 0), 0.0);  // zero-initialized
  EXPECT_THROW(mm.at(10, 0), std::invalid_argument);
  EXPECT_THROW(mm.set(0, 10, 1.0), std::invalid_argument);
}

TEST(MortonMatrixTest, FromColmajorWithTranspose) {
  const int m = 12, n = 9;
  Rng rng(2);
  Matrix<double> srcT(n, m);
  rng.fill_uniform(srcT.storage());
  const layout::MortonLayout l{m, n, 6, 5, 1};
  MortonMatrix mm = MortonMatrix::from_colmajor(l, srcT.view(), Op::Trans);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < m; ++i) EXPECT_EQ(mm.at(i, j), srcT.at(j, i));
}

TEST(MortonMatrixTest, ShapeMismatchRejected) {
  Matrix<double> src(10, 12);
  const layout::MortonLayout l{10, 10, 5, 5, 1};
  EXPECT_THROW(MortonMatrix::from_colmajor(l, src.view()),
               std::invalid_argument);
}

TEST(MortonMultiply, MatchesNaiveExactly) {
  const int m = 300, k = 280, n = 260;
  Rng rng(3);
  Matrix<double> A(m, k), B(k, n), Ref(m, n), C(m, n);
  rng.fill_int(A.storage());
  rng.fill_int(B.storage());
  blas::naive_gemm(Op::NoTrans, Op::NoTrans, m, n, k, 1.0, A.data(), A.ld(),
                   B.data(), B.ld(), 0.0, Ref.data(), Ref.ld());
  const MortonProductPlan p = plan_morton_product(m, k, n);
  MortonMatrix Am = MortonMatrix::from_colmajor(p.a, A.view());
  MortonMatrix Bm = MortonMatrix::from_colmajor(p.b, B.view());
  MortonMatrix Cm(p.c);
  multiply(Am, Bm, Cm);
  Cm.to_colmajor(C.view());
  EXPECT_EQ(max_abs_diff<double>(C.view(), Ref.view()), 0.0);
}

TEST(MortonMultiply, IncompatibleLayoutsRejected) {
  const layout::MortonLayout la{100, 100, 25, 25, 2};
  const layout::MortonLayout lb{100, 100, 13, 25, 3};  // different depth
  const layout::MortonLayout lc{100, 100, 25, 25, 2};
  MortonMatrix A(la), B(lb), C(lc);
  EXPECT_THROW(multiply(A, B, C), std::invalid_argument);
}

TEST(MortonMultiply, ChainedMultipliesStayInMortonForm) {
  // The Fig. 8 use case: D = (A.B).C with a single conversion at each end.
  const int n = 200;
  Rng rng(4);
  Matrix<double> A(n, n), B(n, n), Cc(n, n), Ref1(n, n), Ref2(n, n), Out(n, n);
  rng.fill_int(A.storage(), -2, 2);
  rng.fill_int(B.storage(), -2, 2);
  rng.fill_int(Cc.storage(), -2, 2);
  blas::naive_gemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
                   B.data(), n, 0.0, Ref1.data(), n);
  blas::naive_gemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, Ref1.data(), n,
                   Cc.data(), n, 0.0, Ref2.data(), n);

  const MortonProductPlan p = plan_morton_product(n, n, n);
  MortonMatrix Am = MortonMatrix::from_colmajor(p.a, A.view());
  MortonMatrix Bm = MortonMatrix::from_colmajor(p.b, B.view());
  MortonMatrix Cm = MortonMatrix::from_colmajor(p.b, Cc.view());
  MortonMatrix T(p.c), D(p.c);
  multiply(Am, Bm, T);
  multiply(T, Cm, D);
  D.to_colmajor(Out.view());
  EXPECT_EQ(max_abs_diff<double>(Out.view(), Ref2.view()), 0.0);
}

TEST(MortonMultiply, ReusableArenaMakesNoAllocationsPerCall) {
  const int n = 200;
  const MortonProductPlan p = plan_morton_product(n, n, n);
  MortonMatrix A(p.a), B(p.b), C(p.c);
  Arena arena(multiply_workspace_bytes(p));
  multiply(A, B, C, arena);
  EXPECT_EQ(arena.used(), 0u);          // unwound
  EXPECT_EQ(arena.peak(), arena.capacity());  // sized exactly
}

TEST(MortonMatrixTest, ToColmajorWithAlphaBeta) {
  const int n = 20;
  Rng rng(5);
  Matrix<double> src(n, n), dst(n, n), dst0(n, n);
  rng.fill_uniform(src.storage());
  rng.fill_uniform(dst.storage());
  copy_matrix<double>(dst.view(), dst0.view());
  const layout::MortonLayout l{n, n, 5, 5, 2};
  MortonMatrix mm = MortonMatrix::from_colmajor(l, src.view());
  mm.to_colmajor(dst.view(), 2.0, 3.0);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i)
      EXPECT_DOUBLE_EQ(dst.at(i, j), 2.0 * src.at(i, j) + 3.0 * dst0.at(i, j));
}

}  // namespace
}  // namespace strassen::core
