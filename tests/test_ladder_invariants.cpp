// Degradation-ladder invariants (core::detail::apply_workspace_budget +
// record_fallback).
//
// The ladder's contract, from least to most severe:
//   kNone -> kScheduleSwap -> kDepthReduced -> kBudgetDirect
// with the allocation-failure rungs (kAllocDirect, kAllocStrided) beyond
// those.  Invariants pinned here:
//   * a budget that once forced depth reduction is now satisfied at FULL
//     planned depth by a lower-footprint schedule family (the swap rung),
//   * whatever rung is taken, the executed arena peak stays within the
//     budget,
//   * record_fallback only ever escalates (split products report the worst
//     rung any sub-product took),
//   * pinning a family disables the swap rung but keeps depth reduction
//     within that family,
//   * every allocation-failure point on the new schedule paths still leaves
//     either the exact product or an untouched C.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <new>
#include <string>
#include <vector>

#include "analysis/schedule.hpp"
#include "blas/gemm.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "core/modgemm.hpp"
#include "core/workspace.hpp"
#include "layout/plan.hpp"
#include "testing/fault_injection.hpp"

namespace strassen {
namespace {

namespace ft = ::strassen::testing;
using analysis::ScheduleFamily;
using core::FallbackReason;
using core::ModgemmOptions;
using core::ModgemmReport;

// The swap-rung tests need the planner unpinned: a surrounding
// STRASSEN_SCHEDULE (the chaos CI job exports one) would disable the very
// rung under test.  Clears it for the test's scope, restoring on exit.
class UnpinnedScheduleEnv {
 public:
  UnpinnedScheduleEnv() {
    const char* old = std::getenv("STRASSEN_SCHEDULE");
    had_ = old != nullptr;
    if (had_) {
      saved_ = old;
      ::unsetenv("STRASSEN_SCHEDULE");
    }
  }
  ~UnpinnedScheduleEnv() {
    if (had_) ::setenv("STRASSEN_SCHEDULE", saved_.c_str(), 1);
  }

 private:
  bool had_ = false;
  std::string saved_;
};

// The workspace a given (depth, family) candidate would need for an n^3
// product, or 0 when no tiling exists at that depth.
std::size_t candidate_workspace(int n, int depth, ScheduleFamily family) {
  layout::GemmPlan cand;
  cand.depth = depth;
  cand.m = layout::choose_dim_at_depth(n, depth, {});
  cand.k = cand.m;
  cand.n = cand.m;
  cand.feasible = true;
  cand.schedule = family;
  if (cand.m.tile == 0) return 0;
  return core::modgemm_workspace_bytes(cand, sizeof(double));
}

// ---------------------------------------------------------------------------
// Rung 1: the schedule swap.
// ---------------------------------------------------------------------------

TEST(LadderInvariants, BudgetForcesScheduleSwapNotDepthReduction) {
  UnpinnedScheduleEnv unpinned;
  const int n = 512;
  const layout::GemmPlan planned = layout::plan_gemm(n, n, n, {});
  ASSERT_TRUE(planned.feasible);
  ASSERT_GE(planned.depth, 2);

  // The budget that test_fault_injection.cpp uses to force depth reduction
  // under a pinned default family: the workspace of the next-shallower
  // default plan.  The full-depth low-memory schedule fits under it, so the
  // un-pinned planner must keep the planned depth and swap families instead.
  const std::size_t budget =
      candidate_workspace(n, planned.depth - 1, ScheduleFamily::kWinograd);
  ASSERT_NE(budget, 0u);
  ASSERT_LT(budget, core::modgemm_workspace_bytes(planned, sizeof(double)));
  ASSERT_LE(candidate_workspace(n, planned.depth, ScheduleFamily::kLowMem),
            budget);

  Rng rng(21);
  Matrix<double> A(n, n), B(n, n), C(n, n), Ref(n, n);
  rng.fill_int(A.storage(), -2, 2);
  rng.fill_int(B.storage(), -2, 2);
  blas::naive_gemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
                   B.data(), n, 0.0, Ref.data(), n);

  ModgemmOptions opt;
  opt.max_workspace_bytes = budget;
  // Pin <2,2,2>: the budget arithmetic above prices <2,2,2> plans, and a
  // forced STRASSEN_ALGO family would intercept the ladder (pin > env).
  opt.algo = analysis::AlgoFamily::k222;
  ModgemmReport report;
  core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n, B.data(),
                n, 0.0, C.data(), n, opt, &report);

  EXPECT_EQ(max_abs_diff<double>(C.view(), Ref.view()), 0.0);
  EXPECT_EQ(report.fallback_reason, FallbackReason::kScheduleSwap);
  // Full planned depth was kept -- only the schedule changed.
  EXPECT_EQ(report.plan.depth, planned.depth);
  EXPECT_EQ(report.planned_depth, planned.depth);
  EXPECT_STREQ(report.schedule, "winograd-lowmem");
  // The swap is a real saving and a real bound.
  EXPECT_GT(report.workspace_saved_bytes, 0u);
  EXPECT_GT(report.workspace_peak_bytes, 0u);
  EXPECT_LE(report.workspace_peak_bytes, budget);
}

TEST(LadderInvariants, EveryRungRespectsItsBudget) {
  UnpinnedScheduleEnv unpinned;
  const int n = 512;
  const layout::GemmPlan planned = layout::plan_gemm(n, n, n, {});
  ASSERT_TRUE(planned.feasible);

  // Budgets sized to each candidate the ladder can land on, descending, plus
  // a bottom rung no Strassen depth fits.  Tightening the budget must never
  // make the recorded degradation LESS severe, and the executed peak must
  // stay within the budget at every rung.
  std::vector<std::size_t> budgets;
  for (int d = planned.depth; d >= 1; --d)
    for (ScheduleFamily f : {ScheduleFamily::kWinograd, ScheduleFamily::kLowMem,
                             ScheduleFamily::kInPlace}) {
      const std::size_t w = candidate_workspace(n, d, f);
      if (w != 0) budgets.push_back(w);
    }
  std::sort(budgets.begin(), budgets.end(), std::greater<std::size_t>());
  budgets.push_back(1024);

  Rng rng(22);
  Matrix<double> A(n, n), B(n, n), C(n, n), Ref(n, n);
  rng.fill_int(A.storage(), -2, 2);
  rng.fill_int(B.storage(), -2, 2);
  blas::naive_gemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
                   B.data(), n, 0.0, Ref.data(), n);

  FallbackReason worst = FallbackReason::kNone;
  for (const std::size_t budget : budgets) {
    SCOPED_TRACE(::testing::Message() << "budget=" << budget);
    ModgemmOptions opt;
    opt.max_workspace_bytes = budget;
    // Pin <2,2,2>: the rung shapes below describe the <2,2,2> ladder
    // (pin > a forced STRASSEN_ALGO environment).
    opt.algo = analysis::AlgoFamily::k222;
    ModgemmReport report;
    core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
                  B.data(), n, 0.0, C.data(), n, opt, &report);
    EXPECT_EQ(max_abs_diff<double>(C.view(), Ref.view()), 0.0);
    EXPECT_LE(report.workspace_peak_bytes, budget);
    // Rung shape: a swap keeps the planned depth; depth reduction gives
    // levels back; direct runs without a plan at all.
    switch (report.fallback_reason) {
      case FallbackReason::kNone:
        EXPECT_EQ(report.plan.depth, planned.depth);
        break;
      case FallbackReason::kScheduleSwap:
        EXPECT_EQ(report.plan.depth, planned.depth);
        EXPECT_STRNE(report.schedule, "winograd");
        EXPECT_GT(report.workspace_saved_bytes, 0u);
        break;
      case FallbackReason::kDepthReduced:
        EXPECT_LT(report.plan.depth, planned.depth);
        EXPECT_GE(report.plan.depth, 1);
        break;
      case FallbackReason::kBudgetDirect:
        EXPECT_TRUE(report.plan.direct);
        EXPECT_EQ(report.workspace_peak_bytes, 0u);
        break;
      default:
        FAIL() << "unexpected fallback "
               << core::fallback_reason_name(report.fallback_reason);
    }
    // Monotone: a smaller budget never reports a milder degradation.
    EXPECT_GE(static_cast<int>(report.fallback_reason),
              static_cast<int>(worst));
    if (static_cast<int>(report.fallback_reason) > static_cast<int>(worst))
      worst = report.fallback_reason;
  }
  // The sweep actually exercised the whole ladder down to direct.
  EXPECT_EQ(worst, FallbackReason::kBudgetDirect);
}

// ---------------------------------------------------------------------------
// record_fallback: only ever escalates.
// ---------------------------------------------------------------------------

TEST(LadderInvariants, RecordFallbackIsMonotone) {
  using core::detail::record_fallback;
  ModgemmReport report;
  EXPECT_EQ(report.fallback_reason, FallbackReason::kNone);

  record_fallback(&report, FallbackReason::kScheduleSwap);
  EXPECT_EQ(report.fallback_reason, FallbackReason::kScheduleSwap);
  // A later, milder rung must not mask the recorded degradation.
  record_fallback(&report, FallbackReason::kNone);
  EXPECT_EQ(report.fallback_reason, FallbackReason::kScheduleSwap);

  record_fallback(&report, FallbackReason::kDepthReduced);
  EXPECT_EQ(report.fallback_reason, FallbackReason::kDepthReduced);
  record_fallback(&report, FallbackReason::kScheduleSwap);
  EXPECT_EQ(report.fallback_reason, FallbackReason::kDepthReduced);

  record_fallback(&report, FallbackReason::kAllocStrided);
  EXPECT_EQ(report.fallback_reason, FallbackReason::kAllocStrided);
  record_fallback(&report, FallbackReason::kBudgetDirect);
  EXPECT_EQ(report.fallback_reason, FallbackReason::kAllocStrided);

  // Null report is a no-op, not a crash.
  record_fallback(nullptr, FallbackReason::kBudgetDirect);
}

// ---------------------------------------------------------------------------
// Pinned families and the ladder.
// ---------------------------------------------------------------------------

TEST(LadderInvariants, PinnedFamilyDepthReducesWithinThatFamily) {
  const int n = 512;
  const layout::GemmPlan planned = layout::plan_gemm(n, n, n, {});
  ASSERT_TRUE(planned.feasible);
  ASSERT_GE(planned.depth, 2);

  // Budget below the pinned family's full-depth need: the swap rung is
  // unavailable (the pin already priced the family in), so the ladder must
  // give depth back WITHOUT abandoning the pinned schedule.
  const std::size_t budget =
      candidate_workspace(n, planned.depth - 1, ScheduleFamily::kLowMem);
  ASSERT_NE(budget, 0u);
  ASSERT_LT(budget,
            candidate_workspace(n, planned.depth, ScheduleFamily::kLowMem));

  Rng rng(23);
  Matrix<double> A(n, n), B(n, n), C(n, n), Ref(n, n);
  rng.fill_int(A.storage(), -2, 2);
  rng.fill_int(B.storage(), -2, 2);
  blas::naive_gemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
                   B.data(), n, 0.0, Ref.data(), n);

  ModgemmOptions opt;
  opt.max_workspace_bytes = budget;
  opt.schedule = ScheduleFamily::kLowMem;
  // Pin <2,2,2>: same reason as above -- the budget prices <2,2,2> plans.
  opt.algo = analysis::AlgoFamily::k222;
  ModgemmReport report;
  core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n, B.data(),
                n, 0.0, C.data(), n, opt, &report);

  EXPECT_EQ(max_abs_diff<double>(C.view(), Ref.view()), 0.0);
  EXPECT_EQ(report.fallback_reason, FallbackReason::kDepthReduced);
  EXPECT_LT(report.plan.depth, planned.depth);
  EXPECT_STREQ(report.schedule, "winograd-lowmem");
  EXPECT_LE(report.workspace_peak_bytes, budget);
}

// ---------------------------------------------------------------------------
// Fault sweeps over the new schedule paths: correct product or untouched C.
// ---------------------------------------------------------------------------

// Counts the allocation sites of an un-faulted run under `opt`, then fails
// each site in turn (transient spike) and checks the contract against the
// naive oracle.  Mirrors test_fault_injection.cpp's sweep, parameterised by
// options so the low-memory schedules and the swap rung get the same
// exhaustive treatment as the default path.
void sweep_with_options(int n, const ModgemmOptions& opt,
                        std::uint64_t seed) {
  Rng rng(seed);
  Matrix<double> A(n, n), B(n, n), C0(n, n), Ref(n, n), C(n, n);
  rng.fill_int(A.storage(), -3, 3);
  rng.fill_int(B.storage(), -3, 3);
  rng.fill_int(C0.storage(), -3, 3);
  copy_matrix<double>(C0.view(), Ref.view());
  blas::naive_gemm(Op::NoTrans, Op::NoTrans, n, n, n, 2.0, A.data(), n,
                   B.data(), n, -1.0, Ref.data(), n);

  std::uint64_t sites = 0;
  {
    ft::FaultInjector counter;
    copy_matrix<double>(C0.view(), C.view());
    core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 2.0, A.data(), n,
                  B.data(), n, -1.0, C.data(), n, opt);
    sites = counter.allocations();
    ASSERT_EQ(counter.failures(), 0u);
    ASSERT_EQ(max_abs_diff<double>(C.view(), Ref.view()), 0.0);
  }
  ASSERT_GE(sites, 1u);

  for (std::uint64_t at = 1; at <= sites; ++at) {
    SCOPED_TRACE(::testing::Message() << "fail_at=" << at << "/" << sites);
    ft::FaultInjector inj(ft::FaultMode::kFailOnce, at);
    copy_matrix<double>(C0.view(), C.view());
    ModgemmReport report;
    try {
      core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 2.0, A.data(), n,
                    B.data(), n, -1.0, C.data(), n, opt, &report);
      EXPECT_EQ(max_abs_diff<double>(C.view(), Ref.view()), 0.0);
      if (inj.failures() > 0)
        EXPECT_NE(report.fallback_reason, FallbackReason::kNone);
    } catch (const std::bad_alloc&) {
      EXPECT_EQ(max_abs_diff<double>(C.view(), C0.view()), 0.0);
    }
    EXPECT_GE(inj.failures(), 1u);
  }
}

TEST(LadderInvariants, FaultSweepLowMemSchedule) {
  ModgemmOptions opt;
  opt.schedule = ScheduleFamily::kLowMem;
  sweep_with_options(256, opt, 31);
}

TEST(LadderInvariants, FaultSweepInPlaceSchedule) {
  ModgemmOptions opt;
  opt.schedule = ScheduleFamily::kInPlace;
  sweep_with_options(256, opt, 32);
}

TEST(LadderInvariants, FaultSweepScheduleSwapRung) {
  // A budget that admits full depth only on a low-memory family: every run
  // in the sweep starts from the swap rung, and any injected failure must
  // still end in the exact product or an untouched C.
  UnpinnedScheduleEnv unpinned;
  const int n = 256;
  const layout::GemmPlan planned = layout::plan_gemm(n, n, n, {});
  ASSERT_TRUE(planned.feasible);
  const std::size_t budget =
      candidate_workspace(n, planned.depth, ScheduleFamily::kLowMem);
  ASSERT_NE(budget, 0u);
  ASSERT_LT(budget, core::modgemm_workspace_bytes(planned, sizeof(double)));
  ModgemmOptions opt;
  opt.max_workspace_bytes = budget;
  sweep_with_options(n, opt, 33);
}

}  // namespace
}  // namespace strassen
