// gemm.hpp -- conventional O(n^3) matrix multiplication.
//
// Two implementations with full dgemm semantics
//     C <- alpha * op(A) . op(B) + beta * C:
//
//   * naive_gemm    -- textbook triple loop; the correctness oracle for every
//                      test in the suite.  Deliberately unoptimized.
//   * gemm_blocked  -- cache-blocked driver over the 4x4 microkernel; this is
//                      the library's "vendor dgemm" stand-in: the conventional
//                      baseline in the benches and the leaf multiply of the
//                      column-major baselines (DGEFMM / DGEMMW).
//
// gemm_blocked is a MemModel template so that full executions of the
// baselines can be cache-simulated (paper Fig. 9).
#pragma once

#include <cstddef>

#include "blas/kernels.hpp"
#include "blas/transpose.hpp"
#include "common/aligned_buffer.hpp"
#include "common/check.hpp"
#include "common/matrix.hpp"
#include "common/memmodel.hpp"

namespace strassen::blas {

// C(m x n) *= beta over a column-major view (beta==1 is a no-op; beta==0
// stores zeros without reading C, per BLAS convention).
template <class MM, class T>
void scale_view(MM& mm, int m, int n, T* C, int ldc, T beta) {
  if (beta == T{1}) return;
  for (int j = 0; j < n; ++j) {
    T* Cj = C + static_cast<std::size_t>(j) * ldc;
    if (beta == T{0}) {
      for (int i = 0; i < m; ++i) mm.store(Cj + i, T{0});
    } else {
      for (int i = 0; i < m; ++i)
        mm.store(Cj + i, static_cast<T>(beta * mm.load(Cj + i)));
    }
  }
}

// C(m x n) = alpha * D(m x n) + beta * C over column-major views.
template <class MM, class T>
void axpby_view(MM& mm, int m, int n, T* C, int ldc, T alpha, const T* D,
                int ldd, T beta) {
  for (int j = 0; j < n; ++j) {
    T* Cj = C + static_cast<std::size_t>(j) * ldc;
    const T* Dj = D + static_cast<std::size_t>(j) * ldd;
    if (beta == T{0}) {
      for (int i = 0; i < m; ++i)
        mm.store(Cj + i, static_cast<T>(alpha * mm.load(Dj + i)));
    } else {
      for (int i = 0; i < m; ++i)
        mm.store(Cj + i, static_cast<T>(alpha * mm.load(Dj + i) +
                                        beta * mm.load(Cj + i)));
    }
  }
}

// Blocked conventional gemm (no-transpose core).  A is m x k, B is k x n,
// both column-major; computes C = alpha*A.B + beta*C.
template <class MM, class T>
void gemm_blocked_nn(MM& mm, int m, int n, int k, T alpha, const T* A, int lda,
                     const T* B, int ldb, T beta, T* C, int ldc) {
  constexpr int MC = 64;   // rows of A kept hot across a B panel
  constexpr int KC = 64;   // inner-dimension block
  constexpr int NC = 256;  // columns of B per outer sweep
  scale_view(mm, m, n, C, ldc, beta);
  if (alpha == T{0} || k == 0) return;
  for (int jc = 0; jc < n; jc += NC) {
    const int nb = jc + NC < n ? NC : n - jc;
    for (int pc = 0; pc < k; pc += KC) {
      const int kb = pc + KC < k ? KC : k - pc;
      for (int ic = 0; ic < m; ic += MC) {
        const int mb = ic + MC < m ? MC : m - ic;
        gemm_leaf(mm, mb, nb, kb, A + static_cast<std::size_t>(pc) * lda + ic,
                  lda, B + static_cast<std::size_t>(jc) * ldb + pc, ldb,
                  C + static_cast<std::size_t>(jc) * ldc + ic, ldc,
                  LeafMode::Accumulate, alpha);
      }
    }
  }
}

// Full dgemm semantics.  Transposed operands are materialized once up front
// (MODGEMM instead folds op() into its layout conversion; the baselines pay
// this copy, which mirrors how the original library codes handled it).
template <class MM, class T>
void gemm_blocked(MM& mm, Op opa, Op opb, int m, int n, int k, T alpha,
                  const T* A, int lda, const T* B, int ldb, T beta, T* C,
                  int ldc) {
  STRASSEN_REQUIRE(m >= 0 && n >= 0 && k >= 0, "negative dimension");
  STRASSEN_REQUIRE(lda >= (opa == Op::NoTrans ? m : k) || m * k == 0,
                   "lda too small");
  STRASSEN_REQUIRE(ldb >= (opb == Op::NoTrans ? k : n) || k * n == 0,
                   "ldb too small");
  STRASSEN_REQUIRE(ldc >= m || m * n == 0, "ldc too small");
  if (m == 0 || n == 0) return;

  AlignedBuffer at_buf, bt_buf;
  const T* Ae = A;
  int ldae = lda;
  if (opa == Op::Trans && k > 0) {
    at_buf = AlignedBuffer(static_cast<std::size_t>(m) * k * sizeof(T));
    transpose(mm, k, m, A, lda, at_buf.as<T>(), m);
    Ae = at_buf.as<T>();
    ldae = m;
  }
  const T* Be = B;
  int ldbe = ldb;
  if (opb == Op::Trans && k > 0) {
    bt_buf = AlignedBuffer(static_cast<std::size_t>(k) * n * sizeof(T));
    transpose(mm, n, k, B, ldb, bt_buf.as<T>(), k);
    Be = bt_buf.as<T>();
    ldbe = k;
  }
  gemm_blocked_nn(mm, m, n, k, alpha, Ae, ldae, Be, ldbe, beta, C, ldc);
}

// Direct path of last resort: full dgemm semantics with ZERO allocations.
// op() is handled by strided access instead of materializing the transposed
// operand, so this is slower than gemm_blocked on transposed inputs but can
// run under total memory exhaustion -- the bottom rung of modgemm's
// degradation ladder.  Writes C only after all loads succeed trivially
// (there is nothing left to fail: no allocation happens at all).
template <class MM, class T>
void gemm_strided(MM& mm, Op opa, Op opb, int m, int n, int k, T alpha,
                  const T* A, int lda, const T* B, int ldb, T beta, T* C,
                  int ldc) {
  STRASSEN_REQUIRE(m >= 0 && n >= 0 && k >= 0,
                   "negative dimension: m=" << m << " n=" << n << " k=" << k);
  scale_view(mm, m, n, C, ldc, beta);
  if (alpha == T{0} || k == 0) return;
  for (int j = 0; j < n; ++j) {
    T* Cj = C + static_cast<std::size_t>(j) * ldc;
    for (int p = 0; p < k; ++p) {
      const T bpj =
          opb == Op::NoTrans
              ? mm.load(B + static_cast<std::size_t>(j) * ldb + p)
              : mm.load(B + static_cast<std::size_t>(p) * ldb + j);
      if (bpj == T{0}) continue;
      const T scaled = static_cast<T>(alpha * bpj);
      if (opa == Op::NoTrans) {
        const T* Ap = A + static_cast<std::size_t>(p) * lda;
        for (int i = 0; i < m; ++i)
          mm.store(Cj + i,
                   static_cast<T>(mm.load(Cj + i) + scaled * mm.load(Ap + i)));
      } else {
        for (int i = 0; i < m; ++i)
          mm.store(Cj + i,
                   static_cast<T>(mm.load(Cj + i) +
                                  scaled * mm.load(A + static_cast<std::size_t>(
                                                           i) *
                                                           lda +
                                                       p)));
      }
    }
  }
}

// Reference implementation: straightforward triple loop, always correct,
// never fast.  The oracle for every correctness test.
template <class T>
void naive_gemm(Op opa, Op opb, int m, int n, int k, T alpha, const T* A,
                int lda, const T* B, int ldb, T beta, T* C, int ldc) {
  if (alpha == T{0} || k == 0) {
    // Reference BLAS does not read A or B in this case (so a NaN there must
    // not reach C); it only scales C by beta.
    RawMem raw;
    scale_view(raw, m, n, C, ldc, beta);
    return;
  }
  auto a_at = [&](int i, int p) -> T {
    return opa == Op::NoTrans ? A[static_cast<std::size_t>(p) * lda + i]
                              : A[static_cast<std::size_t>(i) * lda + p];
  };
  auto b_at = [&](int p, int j) -> T {
    return opb == Op::NoTrans ? B[static_cast<std::size_t>(j) * ldb + p]
                              : B[static_cast<std::size_t>(p) * ldb + j];
  };
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) {
      T acc{0};
      for (int p = 0; p < k; ++p) acc += a_at(i, p) * b_at(p, j);
      T& c = C[static_cast<std::size_t>(j) * ldc + i];
      c = beta == T{0} ? static_cast<T>(alpha * acc)
                       : static_cast<T>(alpha * acc + beta * c);
    }
  }
}

// Production-model double-precision entry point for the conventional
// algorithm (the "dgemm" the benches compare against).
void gemm(Op opa, Op opb, int m, int n, int k, double alpha, const double* A,
          int lda, const double* B, int ldb, double beta, double* C, int ldc);
void gemm(Op opa, Op opb, int m, int n, int k, float alpha, const float* A,
          int lda, const float* B, int ldb, float beta, float* C, int ldc);

}  // namespace strassen::blas
