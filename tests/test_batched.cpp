// Tests for the batched GEMM service core (src/core/batched).
//
// Contracts under test: every product of a valid batch is EXACTLY what the
// serial driver would compute for the same arguments (the batch is pure
// amortization, never approximation); an argument error rejects the whole
// batch before any C is touched; a batch of identical products plans once
// and amortizes workspace through the per-thread arena cache (asserted via
// the GemmReport v5 batch fields); injected allocation failures degrade
// per product, exact-or-untouched.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "blas/gemm.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "core/batched.hpp"
#include "parallel/pmodgemm.hpp"
#include "testing/fault_injection.hpp"
#include "tune/plan_cache.hpp"

namespace strassen::core {
namespace {

// One self-owning batch product: operands sized for (op, m, n, k), C seeded
// so beta paths are exercised, plus a serial-reference copy.
struct Product {
  Matrix<double> A, B, C, Ref;
  BatchItem item;

  Product(Op opa, Op opb, int m, int n, int k, double alpha, double beta,
          std::uint64_t seed)
      : A(opa == Op::NoTrans ? std::max(m, 1) : std::max(k, 1),
          opa == Op::NoTrans ? std::max(k, 1) : std::max(m, 1)),
        B(opb == Op::NoTrans ? std::max(k, 1) : std::max(n, 1),
          opb == Op::NoTrans ? std::max(n, 1) : std::max(k, 1)),
        C(std::max(m, 1), std::max(n, 1)),
        Ref(std::max(m, 1), std::max(n, 1)) {
    Rng rng(seed);
    rng.fill_int(A.storage());
    rng.fill_int(B.storage());
    rng.fill_int(C.storage());
    for (std::size_t i = 0; i < C.storage().size(); ++i)
      Ref.storage()[i] = C.storage()[i];
    item = {opa, opb, m,        n,        k,       alpha,  A.data(),
            A.ld(), B.data(),   B.ld(),   beta,    C.data(), C.ld()};
  }

  void run_serial_reference() {
    modgemm(item.opa, item.opb, item.m, item.n, item.k, item.alpha, item.A,
            item.lda, item.B, item.ldb, item.beta, Ref.data(), Ref.ld());
  }

  double diff() const { return max_abs_diff<double>(C.view(), Ref.view()); }
};

std::vector<BatchItem> items_of(std::vector<Product>& products) {
  std::vector<BatchItem> items;
  for (Product& p : products) items.push_back(p.item);
  return items;
}

TEST(Batched, MixedShapesOpsAndScalarsMatchSerial) {
  std::vector<Product> products;
  products.emplace_back(Op::NoTrans, Op::NoTrans, 96, 96, 96, 1.0, 0.0, 1);
  products.emplace_back(Op::Trans, Op::NoTrans, 96, 96, 96, 1.0, 0.0, 2);
  products.emplace_back(Op::NoTrans, Op::Trans, 80, 112, 64, -0.5, 2.0, 3);
  products.emplace_back(Op::Trans, Op::Trans, 112, 80, 96, 2.0, 1.0, 4);
  products.emplace_back(Op::NoTrans, Op::NoTrans, 33, 47, 29, 1.0, 0.5, 5);
  // Degenerate members: empty C, rank-0 update, alpha == 0 (pure scaling).
  products.emplace_back(Op::NoTrans, Op::NoTrans, 0, 16, 16, 1.0, 0.0, 6);
  products.emplace_back(Op::NoTrans, Op::NoTrans, 16, 16, 0, 1.0, 0.5, 7);
  products.emplace_back(Op::NoTrans, Op::NoTrans, 16, 16, 16, 0.0, 3.0, 8);
  // A thin member (direct class) and a highly rectangular one whose depth
  // windows cannot intersect (the split path).
  products.emplace_back(Op::NoTrans, Op::NoTrans, 40, 400, 24, 1.0, 0.0, 9);
  products.emplace_back(Op::NoTrans, Op::NoTrans, 80, 80, 1200, 1.0, 0.0, 10);
  for (Product& p : products) p.run_serial_reference();

  const std::vector<BatchItem> items = items_of(products);
  parallel::ThreadPool pool(4);
  obs::GemmReport report;
  modgemm_batched(&pool, items.data(), static_cast<int>(items.size()), {},
                  &report);

  for (std::size_t i = 0; i < products.size(); ++i)
    EXPECT_EQ(products[i].diff(), 0.0) << "product " << i;
  EXPECT_STREQ(report.entry, "modgemm_batched");
  EXPECT_EQ(report.batch_count, static_cast<int>(items.size()));
  EXPECT_GT(report.batch_classes, 0);
  EXPECT_TRUE(report.parallel);
}

TEST(Batched, NullPoolRunsInlineAndStaysExact) {
  std::vector<Product> products;
  for (int i = 0; i < 6; ++i)
    products.emplace_back(Op::NoTrans, Op::NoTrans, 96, 96, 96, 1.0, 0.0,
                          100 + i);
  for (Product& p : products) p.run_serial_reference();
  const std::vector<BatchItem> items = items_of(products);
  obs::GemmReport report;
  modgemm_batched(nullptr, items.data(), static_cast<int>(items.size()), {},
                  &report);
  for (std::size_t i = 0; i < products.size(); ++i)
    EXPECT_EQ(products[i].diff(), 0.0) << "product " << i;
  EXPECT_FALSE(report.parallel);
  EXPECT_EQ(report.threads, 0);
}

TEST(Batched, CountZeroIsANoOp) {
  obs::GemmReport report;
  modgemm_batched(nullptr, nullptr, 0, {}, &report);
  EXPECT_EQ(report.batch_count, 0);
  EXPECT_EQ(report.batch_classes, 0);
  EXPECT_STREQ(report.entry, "modgemm_batched");
}

TEST(Batched, StridedBatchedMatchesPerItemLoop) {
  const int m = 72, n = 88, k = 64, batch = 5;
  Rng rng(11);
  Matrix<double> A(m, k * batch), B(k, n * batch), C(m, n * batch),
      Ref(m, n * batch);
  rng.fill_int(A.storage());
  rng.fill_int(B.storage());
  rng.fill_int(C.storage());
  for (std::size_t i = 0; i < C.storage().size(); ++i)
    Ref.storage()[i] = C.storage()[i];
  const std::int64_t sa = static_cast<std::int64_t>(A.ld()) * k;
  const std::int64_t sb = static_cast<std::int64_t>(B.ld()) * n;
  const std::int64_t sc = static_cast<std::int64_t>(C.ld()) * n;
  for (int i = 0; i < batch; ++i)
    modgemm(Op::NoTrans, Op::NoTrans, m, n, k, 1.0, A.data() + i * sa, A.ld(),
            B.data() + i * sb, B.ld(), 0.5, Ref.data() + i * sc, Ref.ld());

  parallel::ThreadPool pool(2);
  modgemm_strided_batched(&pool, Op::NoTrans, Op::NoTrans, m, n, k, 1.0,
                          A.data(), A.ld(), sa, B.data(), B.ld(), sb, 0.5,
                          C.data(), C.ld(), sc, batch);
  EXPECT_EQ(max_abs_diff<double>(C.view(), Ref.view()), 0.0);
}

TEST(Batched, StridedBroadcastSharesAnOperand) {
  // stride_a == 0 broadcasts A across the batch (the attention-style shape).
  const int n = 64, batch = 4;
  Rng rng(13);
  Matrix<double> A(n, n), B(n, n * batch), C(n, n * batch), Ref(n, n * batch);
  rng.fill_int(A.storage());
  rng.fill_int(B.storage());
  const std::int64_t sb = static_cast<std::int64_t>(B.ld()) * n;
  const std::int64_t sc = static_cast<std::int64_t>(C.ld()) * n;
  for (int i = 0; i < batch; ++i)
    modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), A.ld(),
            B.data() + i * sb, B.ld(), 0.0, Ref.data() + i * sc, Ref.ld());
  modgemm_strided_batched(nullptr, Op::NoTrans, Op::NoTrans, n, n, n, 1.0,
                          A.data(), A.ld(), 0, B.data(), B.ld(), sb, 0.0,
                          C.data(), C.ld(), sc, batch);
  EXPECT_EQ(max_abs_diff<double>(C.view(), Ref.view()), 0.0);
}

TEST(Batched, BadItemRejectsTheWholeBatchBeforeAnyWrite) {
  std::vector<Product> products;
  for (int i = 0; i < 3; ++i)
    products.emplace_back(Op::NoTrans, Op::NoTrans, 64, 64, 64, 1.0, 0.0,
                          200 + i);
  std::vector<BatchItem> items = items_of(products);
  items[2].lda = 1;  // too small for m = 64

  // Poison every C; after the rejected call each must be bit-unchanged.
  std::vector<std::vector<double>> poisons;
  for (Product& p : products) {
    std::vector<double> snap(p.C.storage().size());
    for (std::size_t i = 0; i < snap.size(); ++i) snap[i] = p.C.storage()[i];
    poisons.push_back(std::move(snap));
  }
  EXPECT_THROW(modgemm_batched(nullptr, items.data(),
                               static_cast<int>(items.size())),
               std::invalid_argument);
  for (std::size_t p = 0; p < products.size(); ++p)
    for (std::size_t i = 0; i < poisons[p].size(); ++i)
      ASSERT_EQ(products[p].C.storage()[i], poisons[p][i])
          << "C of product " << p << " was touched at " << i;

  EXPECT_EQ(try_modgemm_batched(nullptr, items.data(),
                                static_cast<int>(items.size())),
            Status::kBadLda);
}

TEST(Batched, TryVariantsReturnPreciseStatuses) {
  Matrix<double> A(64, 64), B(64, 64), C(64, 64);
  EXPECT_EQ(try_modgemm_batched(nullptr, nullptr, -1), Status::kBadM);
  EXPECT_EQ(try_modgemm_batched(nullptr, nullptr, 3), Status::kBadM);
  EXPECT_EQ(try_modgemm_batched(nullptr, nullptr, 0), Status::kOk);
  // stride_c smaller than one C footprint -> outputs would alias.
  EXPECT_EQ(try_modgemm_strided_batched(nullptr, Op::NoTrans, Op::NoTrans, 64,
                                        64, 64, 1.0, A.data(), 64, 0,
                                        B.data(), 64, 0, 0.0, C.data(), 64,
                                        64, 2),
            Status::kBadLdc);
  EXPECT_EQ(try_modgemm_strided_batched(nullptr, Op::NoTrans, Op::NoTrans, 64,
                                        64, 64, 1.0, A.data(), 64, -1,
                                        B.data(), 64, 0, 0.0, C.data(), 64,
                                        64 * 64, 2),
            Status::kBadLda);
}

TEST(Batched, IdenticalProductsPlanOnceAndAmortizeWorkspace) {
  // A shape no other test uses, so this test owns its plan-cache entry.
  const int n = 104, batch = 16, threads = 4;
  std::vector<Product> products;
  for (int i = 0; i < batch; ++i)
    products.emplace_back(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, 0.0,
                          300 + i);
  for (Product& p : products) p.run_serial_reference();
  const std::vector<BatchItem> items = items_of(products);

  parallel::ThreadPool pool(threads);
  // Pinned to <2,2,2>: the acceptance counters below describe the pooled
  // task-per-product path, but a forced STRASSEN_ALGO run would route every
  // product through the serial family driver, which never touches the pool
  // arena cache (acquisitions would read 0).  Pin > env.
  BatchedOptions bopt;
  bopt.algo = analysis::AlgoFamily::k222;
  obs::GemmReport first;
  modgemm_batched(&pool, items.data(), batch, bopt, &first);
  for (std::size_t i = 0; i < products.size(); ++i)
    EXPECT_EQ(products[i].diff(), 0.0) << "product " << i;

  // The acceptance criterion: B identical products, exactly ONE planning
  // pass...
  EXPECT_EQ(first.batch_classes, 1);
  EXPECT_EQ(first.batch_plan_cache_hits + first.batch_plan_cache_misses, 1u);
  // ...and workspace acquisitions amortized through the per-thread arena
  // cache: one acquisition per product, cold allocations bounded by the pool
  // width + the caller, NOT by the batch size.
  EXPECT_EQ(first.batch_workspace_acquisitions,
            static_cast<std::uint64_t>(batch));
  EXPECT_LE(first.batch_workspace_cold_allocs,
            static_cast<std::uint64_t>(threads + 1));

  // A second identical batch hits the plan cache (same process).
  obs::GemmReport second;
  modgemm_batched(&pool, items.data(), batch, bopt, &second);
  EXPECT_EQ(second.batch_classes, 1);
  EXPECT_EQ(second.batch_plan_cache_hits, 1u);
  EXPECT_EQ(second.batch_plan_cache_misses, 0u);
}

TEST(Batched, PlanCacheOffStillPlansOncePerClass) {
  const int n = 96, batch = 8;
  std::vector<Product> products;
  for (int i = 0; i < batch; ++i)
    products.emplace_back(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, 0.0,
                          400 + i);
  for (Product& p : products) p.run_serial_reference();
  const std::vector<BatchItem> items = items_of(products);
  BatchedOptions opt;
  opt.use_plan_cache = false;
  obs::GemmReport report;
  modgemm_batched(nullptr, items.data(), batch, opt, &report);
  for (std::size_t i = 0; i < products.size(); ++i)
    EXPECT_EQ(products[i].diff(), 0.0) << "product " << i;
  EXPECT_EQ(report.batch_classes, 1);
  EXPECT_EQ(report.batch_plan_cache_hits, 0u);
  EXPECT_EQ(report.batch_plan_cache_misses, 1u);
}

TEST(Batched, PinnedStrategyAndScheduleStayExact) {
  for (const layout::ExecStrategy strategy :
       {layout::ExecStrategy::kMorton, layout::ExecStrategy::kPackFused}) {
    std::vector<Product> products;
    for (int i = 0; i < 4; ++i)
      products.emplace_back(Op::NoTrans, Op::NoTrans, 128, 128, 128, 1.0, 1.0,
                            500 + i);
    for (Product& p : products) p.run_serial_reference();
    const std::vector<BatchItem> items = items_of(products);
    parallel::ThreadPool pool(2);
    BatchedOptions opt;
    opt.strategy = strategy;
    opt.schedule = analysis::ScheduleFamily::kLowMem;
    modgemm_batched(&pool, items.data(), static_cast<int>(items.size()), opt);
    for (std::size_t i = 0; i < products.size(); ++i)
      EXPECT_EQ(products[i].diff(), 0.0)
          << "strategy " << static_cast<int>(strategy) << " product " << i;
  }
}

TEST(Batched, BigProductsDeepSpawnAndStayExact) {
  // One product large enough to exceed min_task_flops runs as a
  // deep-spawning pmodgemm call; the small ones fan out as tasks.  Both
  // routes must match the serial reference exactly.
  std::vector<Product> products;
  products.emplace_back(Op::NoTrans, Op::NoTrans, 320, 320, 320, 1.0, 0.0,
                        600);
  for (int i = 0; i < 5; ++i)
    products.emplace_back(Op::NoTrans, Op::NoTrans, 96, 96, 96, 1.0, 0.0,
                          601 + i);
  for (Product& p : products) p.run_serial_reference();
  const std::vector<BatchItem> items = items_of(products);
  parallel::ThreadPool pool(4);
  BatchedOptions opt;
  opt.min_task_flops = std::int64_t{1} << 23;  // only the 320 product is deep
  obs::GemmReport report;
  modgemm_batched(&pool, items.data(), static_cast<int>(items.size()), opt,
                  &report);
  for (std::size_t i = 0; i < products.size(); ++i)
    EXPECT_EQ(products[i].diff(), 0.0) << "product " << i;
  EXPECT_GT(report.tasks_executed, 0u);
}

TEST(Batched, WorkspaceBudgetDegradesPerClassAndStaysExact) {
  std::vector<Product> products;
  for (int i = 0; i < 4; ++i)
    products.emplace_back(Op::NoTrans, Op::NoTrans, 160, 160, 160, 1.0, 0.0,
                          700 + i);
  for (Product& p : products) p.run_serial_reference();
  const std::vector<BatchItem> items = items_of(products);
  BatchedOptions opt;
  opt.max_workspace_bytes = 1;  // nothing fits: budget-direct for the class
  obs::GemmReport report;
  modgemm_batched(nullptr, items.data(), static_cast<int>(items.size()), opt,
                  &report);
  for (std::size_t i = 0; i < products.size(); ++i)
    EXPECT_EQ(products[i].diff(), 0.0) << "product " << i;
  EXPECT_EQ(report.fallback_reason, obs::FallbackReason::kBudgetDirect);
}

TEST(BatchedFaults, EveryInjectedAllocationFailureKeepsEveryProductExact) {
  // Count the batch's allocation sites, then fail each one in turn.  The
  // ladder must absorb every failure: kOk, and every C exact.
  const int batch = 6;
  auto make_products = [&] {
    std::vector<Product> products;
    for (int i = 0; i < batch; ++i)
      products.emplace_back(Op::NoTrans, Op::NoTrans, 112, 112, 112, 1.0, 0.5,
                            800 + i);
    for (Product& p : products) p.run_serial_reference();
    return products;
  };

  std::uint64_t sites = 0;
  {
    std::vector<Product> products = make_products();
    const std::vector<BatchItem> items = items_of(products);
    parallel::ThreadPool pool(2);
    testing::FaultInjector counter(testing::FaultMode::kCountOnly);
    ASSERT_EQ(try_modgemm_batched(&pool, items.data(), batch), Status::kOk);
    sites = counter.allocations();
  }

  for (std::uint64_t fail_at = 1; fail_at <= sites; ++fail_at) {
    std::vector<Product> products = make_products();
    const std::vector<BatchItem> items = items_of(products);
    parallel::ThreadPool pool(2);
    testing::FaultInjector injector(testing::FaultMode::kFailOnce, fail_at);
    const Status s = try_modgemm_batched(&pool, items.data(), batch);
    EXPECT_EQ(s, Status::kOk) << "fail_at " << fail_at;
    for (int i = 0; i < batch; ++i)
      ASSERT_EQ(products[static_cast<std::size_t>(i)].diff(), 0.0)
          << "fail_at " << fail_at << " product " << i;
  }
}

TEST(BatchedFaults, HardCeilingStillCompletesEveryProduct) {
  // kFailFrom: every allocation after the cutoff dies -- the whole batch
  // must ride the allocation-free bottom rungs and still be exact.
  const int batch = 4;
  std::vector<Product> products;
  for (int i = 0; i < batch; ++i)
    products.emplace_back(Op::NoTrans, Op::NoTrans, 96, 96, 96, 1.0, 0.0,
                          900 + i);
  for (Product& p : products) p.run_serial_reference();
  const std::vector<BatchItem> items = items_of(products);
  testing::FaultInjector injector(testing::FaultMode::kFailFrom, 1);
  const Status s = try_modgemm_batched(nullptr, items.data(), batch);
  EXPECT_EQ(s, Status::kOk);
  for (int i = 0; i < batch; ++i)
    EXPECT_EQ(products[static_cast<std::size_t>(i)].diff(), 0.0)
        << "product " << i;
}

TEST(Batched, TunedBatchReportsTheCacheSource) {
  // Pre-warm the process memo with a cheap survey (no kernel mutation) so
  // the batched call's autotune_cached() resolves without measuring; the
  // cold -> warm -> rejected file transitions are covered in
  // test_plan_cache.cpp.
  tune::reset_autotune_memo();
  tune::AutotuneOptions survey;
  survey.candidate_tiles = {16, 32};
  survey.crossover_sizes = {64};
  survey.strategy_sizes = {96};
  survey.repetitions = 1;
  survey.apply_best_kernel = false;
  ASSERT_EQ(tune::autotune_cached(survey, nullptr).source,
            tune::TuneSource::kFreshSurvey);

  std::vector<Product> products;
  for (int i = 0; i < 3; ++i)
    products.emplace_back(Op::NoTrans, Op::NoTrans, 96, 96, 96, 1.0, 0.0,
                          1000 + i);
  for (Product& p : products) p.run_serial_reference();
  const std::vector<BatchItem> items = items_of(products);
  BatchedOptions opt;
  opt.tune = true;
  obs::GemmReport report;
  modgemm_batched(nullptr, items.data(), static_cast<int>(items.size()), opt,
                  &report);
  EXPECT_STREQ(report.tune_cache, "warm");
  for (std::size_t i = 0; i < products.size(); ++i)
    EXPECT_EQ(products[i].diff(), 0.0) << "product " << i;
  tune::reset_autotune_memo();
}

}  // namespace
}  // namespace strassen::core
