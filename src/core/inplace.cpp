#include "core/inplace.hpp"

namespace strassen::core {

void multiply_inplace(MortonMatrix& A, MortonMatrix& B, MortonMatrix& C) {
  const auto& la = A.layout();
  const auto& lb = B.layout();
  const auto& lc = C.layout();
  STRASSEN_REQUIRE(la.tile_rows == la.tile_cols &&
                       lb.tile_rows == lb.tile_cols &&
                       la.tile_rows == lb.tile_rows,
                   "in-place multiply requires square, equal tiles");
  STRASSEN_REQUIRE(la.depth == lb.depth && la.depth == lc.depth,
                   "operand layouts must share the recursion depth");
  STRASSEN_REQUIRE(lc.tile_rows == la.tile_rows &&
                       lc.tile_cols == lb.tile_cols,
                   "result layout incompatible with operands");
  STRASSEN_REQUIRE(la.cols == lb.rows && lc.rows == la.rows &&
                       lc.cols == lb.cols,
                   "shape mismatch");
  RawMem mm;
  winograd_inplace_recurse(mm, C.data(), A.data(), B.data(), la.tile_rows,
                           la.depth);
}

}  // namespace strassen::core
