#include "parallel/arena_pool.hpp"

#include <new>
#include <utility>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "obs/collector.hpp"

namespace strassen::parallel {

namespace {

// Idle arenas cached per thread.  Bounded so a long-lived caller thread
// holds at most kMaxCachedArenas buffers of the largest sizes it has used.
constexpr std::size_t kMaxCachedArenas = 8;

struct ThreadArenaCache {
  std::vector<Arena> idle;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

ThreadArenaCache& cache() {
  thread_local ThreadArenaCache tl_cache;
  return tl_cache;
}

}  // namespace

ScratchArena::ScratchArena(std::size_t bytes) : requested_(bytes) {
  // A zero-byte request never touches storage or the gate, mirroring
  // Arena(0) / AlignedBuffer(0): the arena stays empty and is not cached.
  if (bytes == 0) return;
  ThreadArenaCache& c = cache();
  // Best fit: the smallest cached arena with enough capacity.
  std::size_t best = c.idle.size();
  for (std::size_t i = 0; i < c.idle.size(); ++i) {
    if (c.idle[i].capacity() < bytes) continue;
    if (best == c.idle.size() ||
        c.idle[i].capacity() < c.idle[best].capacity())
      best = i;
  }
  if (best != c.idle.size()) {
    // A cache hit is still an acquisition: consult the allocation gate
    // exactly as a cold allocation would, and fail the same way.  No
    // retry -- refusal feeds the degradation ladder like a real OOM.
    if (!AlignedBuffer::allocation_allowed(bytes)) throw std::bad_alloc();
    arena_ = std::move(c.idle[best]);
    c.idle.erase(c.idle.begin() + static_cast<std::ptrdiff_t>(best));
    arena_.reset_peak();  // peak() measures this acquisition, not history
    ++c.hits;
  } else {
    ++c.misses;
    arena_ = Arena(bytes);  // consults the gate inside AlignedBuffer
  }
  if (obs::Collector* col = obs::current()) col->note_workspace(bytes);
}

ScratchArena::~ScratchArena() {
  if (arena_.capacity() == 0) return;
  arena_.pop(0);  // release all frames; capacity is retained
  ThreadArenaCache& c = cache();
  if (c.idle.size() < kMaxCachedArenas) {
    c.idle.push_back(std::move(arena_));
    return;
  }
  // Cache full: keep the larger of ours and the smallest cached one, so the
  // cache converges on the biggest working set seen on this thread.
  std::size_t smallest = 0;
  for (std::size_t i = 1; i < c.idle.size(); ++i)
    if (c.idle[i].capacity() < c.idle[smallest].capacity()) smallest = i;
  if (c.idle[smallest].capacity() < arena_.capacity())
    c.idle[smallest] = std::move(arena_);
  // else: drop ours (freed by ~Arena)
}

void purge_thread_arena_cache() noexcept {
  cache().idle.clear();
}

ArenaCacheStats thread_arena_cache_stats() noexcept {
  const ThreadArenaCache& c = cache();
  ArenaCacheStats s;
  s.cached_arenas = c.idle.size();
  for (const Arena& a : c.idle) s.cached_bytes += a.capacity();
  s.hits = c.hits;
  s.misses = c.misses;
  return s;
}

}  // namespace strassen::parallel
