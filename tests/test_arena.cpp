// Unit tests for the stack allocator (src/common/arena).
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <new>
#include <stdexcept>
#include <utility>

#include "common/arena.hpp"

namespace strassen {
namespace {

TEST(Arena, PushReturnsAlignedDistinctRegions) {
  Arena a(4096);
  double* p1 = a.push<double>(10);
  double* p2 = a.push<double>(10);
  EXPECT_NE(p1, p2);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p1) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p2) % 64, 0u);
  // Regions must not overlap.
  EXPECT_GE(p2, p1 + 10);
}

TEST(Arena, PopReleasesToMarker) {
  Arena a(4096);
  const Arena::Marker m = a.mark();
  a.push<double>(100);
  EXPECT_GT(a.used(), 0u);
  a.pop(m);
  EXPECT_EQ(a.used(), 0u);
}

TEST(Arena, ReusesSpaceAfterPop) {
  Arena a(1024);
  const Arena::Marker m = a.mark();
  double* p1 = a.push<double>(64);
  a.pop(m);
  double* p2 = a.push<double>(64);
  EXPECT_EQ(p1, p2);
}

TEST(Arena, OverflowThrowsBadAlloc) {
  Arena a(256);
  EXPECT_THROW(a.push<double>(1024), std::bad_alloc);
}

TEST(Arena, PeakTracksHighWaterMark) {
  Arena a(4096);
  {
    Arena::Frame f(a);
    a.push<double>(100);  // 800 bytes -> rounded to 832
    {
      Arena::Frame g(a);
      a.push<double>(100);
    }
    a.push<double>(10);
  }
  EXPECT_EQ(a.used(), 0u);
  EXPECT_GE(a.peak(), 1600u);
  EXPECT_LE(a.peak(), 4096u);
}

TEST(Arena, FrameReleasesOnScopeExit) {
  Arena a(4096);
  {
    Arena::Frame f(a);
    a.push<int>(100);
    EXPECT_GT(a.used(), 0u);
  }
  EXPECT_EQ(a.used(), 0u);
}

TEST(Arena, NestedFramesUnwindInOrder) {
  Arena a(8192);
  Arena::Frame f1(a);
  a.push<char>(64);
  const std::size_t after1 = a.used();
  {
    Arena::Frame f2(a);
    a.push<char>(128);
    EXPECT_GT(a.used(), after1);
  }
  EXPECT_EQ(a.used(), after1);
}

TEST(Arena, CapacityReflectsConstruction) {
  Arena a(1000);
  EXPECT_GE(a.capacity(), 1000u);
}

TEST(Arena, MoveConstructionLeavesSourceEmptyAndSafe) {
  Arena a(1024);
  a.push<double>(16);
  const std::size_t used = a.used();
  Arena b(std::move(a));
  // Destination took over the storage and counters...
  EXPECT_GE(b.capacity(), 1024u);
  EXPECT_EQ(b.used(), used);
  EXPECT_GE(b.peak(), used);
  b.push<double>(16);  // ...and is fully functional.
  // Source is the safe empty state: no capacity, no counters, and a push
  // reports exhaustion instead of handing out a dangling pointer.
  EXPECT_EQ(a.capacity(), 0u);
  EXPECT_EQ(a.used(), 0u);
  EXPECT_EQ(a.peak(), 0u);
  EXPECT_THROW(a.push<double>(1), std::bad_alloc);
}

TEST(Arena, MoveAssignmentLeavesSourceEmptyAndSafe) {
  Arena a(512);
  a.push<char>(64);
  Arena b(256);
  b.push<char>(32);
  b = std::move(a);
  EXPECT_GE(b.capacity(), 512u);
  EXPECT_GT(b.used(), 0u);
  EXPECT_EQ(a.capacity(), 0u);
  EXPECT_EQ(a.used(), 0u);
  EXPECT_EQ(a.peak(), 0u);
  EXPECT_THROW(a.push<char>(1), std::bad_alloc);
}

TEST(Arena, PushCountOverflowIsRejected) {
  // count * sizeof(T) would wrap: rejected as a bad argument, not allocated
  // with a silently wrapped size.
  Arena a(256);
  EXPECT_THROW(a.push<double>(std::numeric_limits<std::size_t>::max() / 4),
               std::invalid_argument);
}

}  // namespace
}  // namespace strassen
